#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace akb::obs {

namespace {

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out->append("null");
    return;
  }
  char buf[32];
  // %.17g round-trips doubles but produces noisy output; %.12g is enough
  // for timing/metric values and stays readable.
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  out->append(buf);
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Json::Set(std::string_view key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      if (integer_) {
        out->append(std::to_string(int_));
      } else {
        AppendNumber(out, number_);
      }
      break;
    case Type::kString:
      out->push_back('"');
      out->append(JsonEscape(string_));
      out->push_back('"');
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out->push_back(',');
        newline(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out->push_back(',');
        newline(depth + 1);
        out->push_back('"');
        out->append(JsonEscape(members_[i].first));
        out->append(indent > 0 ? "\": " : "\":");
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Run(Json* out) {
    Status s = ParseValue(out);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return Status::OK();
  }

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (ConsumeWord("true")) {
      *out = Json(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = Json(false);
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      *out = Json();
      return Status::OK();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Fail(std::string("unexpected character '") + c + "'");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    bool integral = true;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      while (pos_ < text_.size()) {
        char c = text_[pos_];
        if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
            c == '+' || c == '-') {
          ++pos_;
        } else {
          break;
        }
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        *out = Json(value);
        return Status::OK();
      }
      // Out-of-int64-range integer literal: fall through to double.
    }
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Fail("malformed number '" + std::string(token) + "'");
    }
    *out = Json(value);
    return Status::OK();
  }

  Status ParseString(Json* out) {
    std::string value;
    Status s = ParseRawString(&value);
    if (!s.ok()) return s;
    *out = Json(std::move(value));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= unsigned(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= unsigned(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= unsigned(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; good enough for metric names).
          if (code < 0x80) {
            out->push_back(char(code));
          } else if (code < 0x800) {
            out->push_back(char(0xC0 | (code >> 6)));
            out->push_back(char(0x80 | (code & 0x3F)));
          } else {
            out->push_back(char(0xE0 | (code >> 12)));
            out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      Status s = ParseValue(&item);
      if (!s.ok()) return s;
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseRawString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      Json value;
      s = ParseValue(&value);
      if (!s.ok()) return s;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status Json::Parse(std::string_view text, Json* out) {
  return Parser(text).Run(out);
}

}  // namespace akb::obs

// akb::obs metrics — a process-global registry of lock-cheap counters,
// gauges, and fixed-bucket latency histograms.
//
// Design goals (per-stage instrumentation of a hot extraction pipeline):
//   * a hot-loop increment costs ~one relaxed atomic add on a cache line
//     sharded by thread, so concurrent extractor workers do not contend;
//   * metrics are addressable by dotted name ("akb.extract.dom.claims"),
//     registered on first use, and pointer-stable thereafter (the AKB_*
//     macros cache the pointer in a function-local static);
//   * the whole registry is snapshot-able at any time and exports both as
//     JSON (machine trajectory) and as a human table (CLI report).
//
// Compile out every call site with -DAKB_METRICS_DISABLED, or disable at
// runtime with SetMetricsEnabled(false) (one relaxed load per op).
#ifndef AKB_OBS_METRICS_H_
#define AKB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace akb::obs {

/// Runtime kill switch shared by counters, gauges, and histograms.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonic counter, sharded across cache lines by thread so that N
/// extractor workers incrementing the same name do not bounce one line.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(int64_t n = 1);
  void Increment() { Add(1); }
  int64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time value (queue depth, busy workers). Tracks the high-water
/// mark since the last Reset so saturation shows up in snapshots.
class Gauge {
 public:
  void Set(int64_t v);
  void Add(int64_t delta);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  void UpdateMax(int64_t v);

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket latency histogram: 64 exponential (power-of-two) buckets;
/// bucket i counts values v with bit_width(v) == i, i.e. [2^(i-1), 2^i).
/// Record() is two relaxed adds; negative values clamp to 0. There is no
/// separate count cell — Count() sums the buckets, trading a 64-load read
/// (snapshot-time only) for one fewer RMW on the record path.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(int64_t value);
  int64_t Count() const;
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Min() const;
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Bucket-interpolated percentile estimate, p in [0, 100].
  double Percentile(double p) const;
  int64_t BucketCount(size_t bucket) const;
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's state at snapshot time.
struct MetricSnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;  ///< counter total / gauge current value
  int64_t max = 0;    ///< gauge high-water mark / histogram max
  // Histogram-only fields.
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::vector<MetricSnapshotEntry> entries;  ///< sorted by name

  const MetricSnapshotEntry* Find(std::string_view name) const;
  /// Counter/histogram totals minus `before` (per-run deltas out of the
  /// process-global registry); gauges keep their current value. Metrics
  /// absent from `before` are kept unchanged.
  MetricsSnapshot DiffFrom(const MetricsSnapshot& before) const;
  std::string ToJson(int indent = 2) const;
  /// Two human tables (counters+gauges, histograms) via common/table.
  std::string ToTable() const;
};

/// Name -> metric map. Registration takes a mutex; lookups after the first
/// use are free when going through the AKB_* macros (function-local static
/// pointer cache). Metric pointers stay valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (tests, per-bench isolation).
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Dynamic-name helpers for per-class metrics ("akb.extract.dom.claims." +
/// class_name): one registry map lookup plus a string concatenation per
/// call. Call sites that fire per class or per source on every batch
/// should pre-resolve through a MetricFamily instead; keep these for
/// genuinely one-off names.
void CounterAdd(std::string_view name, int64_t n = 1);
void GaugeSet(std::string_view name, int64_t v);
void HistogramRecord(std::string_view name, int64_t v);

/// Pre-resolved handles for one family of dynamic-name metrics sharing a
/// prefix ("akb.extract.dom.claims." + <class>). Each distinct label hits
/// the global registry (and builds the full name) exactly once; later
/// calls are a local heterogeneous map lookup with no allocation, so the
/// family is safe at per-class / per-source granularity inside loops
/// (still not per-item — cache the pointer from Get() for that).
/// Thread-safe; returned pointers stay valid for the process lifetime,
/// like the registry's.
///
///   static obs::CounterFamily family("akb.extract.dom.claims.");
///   family.Add(class_name, n);
template <typename Metric>
class MetricFamily {
 public:
  explicit MetricFamily(std::string prefix) : prefix_(std::move(prefix)) {}

  MetricFamily(const MetricFamily&) = delete;
  MetricFamily& operator=(const MetricFamily&) = delete;

  Metric* Get(std::string_view label) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(label);
    if (it == cache_.end()) {
      std::string name = prefix_;
      name += label;
      Metric* metric;
      if constexpr (std::is_same_v<Metric, Counter>) {
        metric = MetricsRegistry::Global().GetCounter(name);
      } else if constexpr (std::is_same_v<Metric, Gauge>) {
        metric = MetricsRegistry::Global().GetGauge(name);
      } else {
        metric = MetricsRegistry::Global().GetHistogram(name);
      }
      it = cache_.emplace(std::string(label), metric).first;
    }
    return it->second;
  }

  void Add(std::string_view label, int64_t n = 1) {
#ifndef AKB_METRICS_DISABLED
    if (MetricsEnabled()) Get(label)->Add(n);
#else
    (void)label;
    (void)n;
#endif
  }

  void Set(std::string_view label, int64_t v) {
#ifndef AKB_METRICS_DISABLED
    if (MetricsEnabled()) Get(label)->Set(v);
#else
    (void)label;
    (void)v;
#endif
  }

  void Record(std::string_view label, int64_t v) {
#ifndef AKB_METRICS_DISABLED
    if (MetricsEnabled()) Get(label)->Record(v);
#else
    (void)label;
    (void)v;
#endif
  }

 private:
  std::string prefix_;
  std::mutex mutex_;
  std::map<std::string, Metric*, std::less<>> cache_;
};

using CounterFamily = MetricFamily<Counter>;
using GaugeFamily = MetricFamily<Gauge>;
using HistogramFamily = MetricFamily<Histogram>;

}  // namespace akb::obs

#ifdef AKB_METRICS_DISABLED

#define AKB_COUNTER_ADD(name, n) \
  do {                           \
  } while (0)
#define AKB_COUNTER_INC(name) \
  do {                        \
  } while (0)
#define AKB_GAUGE_SET(name, v) \
  do {                         \
  } while (0)
#define AKB_GAUGE_ADD(name, d) \
  do {                         \
  } while (0)
#define AKB_HISTOGRAM_RECORD(name, v) \
  do {                                \
  } while (0)

#else

// `name` must be a string literal (or otherwise identical on every
// execution of the statement): the metric pointer is resolved once and
// cached, so the steady-state cost is one relaxed add.
#define AKB_COUNTER_ADD(name, n)                                    \
  do {                                                              \
    static ::akb::obs::Counter* akb_metric_counter_ =               \
        ::akb::obs::MetricsRegistry::Global().GetCounter(name);     \
    akb_metric_counter_->Add(n);                                    \
  } while (0)
#define AKB_COUNTER_INC(name) AKB_COUNTER_ADD(name, 1)
#define AKB_GAUGE_SET(name, v)                                      \
  do {                                                              \
    static ::akb::obs::Gauge* akb_metric_gauge_ =                   \
        ::akb::obs::MetricsRegistry::Global().GetGauge(name);       \
    akb_metric_gauge_->Set(v);                                      \
  } while (0)
#define AKB_GAUGE_ADD(name, d)                                      \
  do {                                                              \
    static ::akb::obs::Gauge* akb_metric_gauge_ =                   \
        ::akb::obs::MetricsRegistry::Global().GetGauge(name);       \
    akb_metric_gauge_->Add(d);                                      \
  } while (0)
#define AKB_HISTOGRAM_RECORD(name, v)                               \
  do {                                                              \
    static ::akb::obs::Histogram* akb_metric_histogram_ =           \
        ::akb::obs::MetricsRegistry::Global().GetHistogram(name);   \
    akb_metric_histogram_->Record(v);                               \
  } while (0)

#endif  // AKB_METRICS_DISABLED

#endif  // AKB_OBS_METRICS_H_

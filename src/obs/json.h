// Minimal JSON value model, parser, and serializer for the observability
// layer: metrics/trace export, and the common bench-results format that
// `akb_cli bench-merge` consumes. Deliberately small — no external deps,
// objects preserve insertion order (stable, diffable output files).
#ifndef AKB_OBS_JSON_H_
#define AKB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace akb::obs {

/// One JSON value. Numbers remember whether they were written as integers
/// so counters export without a trailing ".0" (and without precision loss
/// up to int64 range on parse of integral literals).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int64_t n) : type_(Type::kNumber), integer_(true), int_(n) {}
  Json(int n) : Json(static_cast<int64_t>(n)) {}
  Json(size_t n) : Json(static_cast<int64_t>(n)) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    if (!is_number()) return fallback;
    return integer_ ? static_cast<double>(int_) : number_;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    if (!is_number()) return fallback;
    return integer_ ? int_ : static_cast<int64_t>(number_);
  }
  const std::string& AsString() const { return string_; }

  /// Array access.
  void Append(Json value) { items_.push_back(std::move(value)); }
  size_t size() const { return items_.size(); }
  const Json& at(size_t i) const { return items_[i]; }
  const std::vector<Json>& items() const { return items_; }

  /// Object access (insertion-ordered; Set replaces an existing key).
  void Set(std::string_view key, Json value);
  /// Returns nullptr when absent (or not an object).
  const Json* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits compact one-line JSON.
  std::string Dump(int indent = 0) const;

  /// Parses `text` into `*out`. On failure returns an error Status naming
  /// the byte offset.
  static Status Parse(std::string_view text, Json* out);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  bool integer_ = false;
  int64_t int_ = 0;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                             // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace akb::obs

#endif  // AKB_OBS_JSON_H_

// akb::obs SLO tracking — evaluates a latency / error budget against the
// rolling windows, so "is the KB this process serves healthy" is one call.
//
// An SloTracker owns the rolling latency histogram and error counter for
// one served surface (e.g. the query engine). Every request records once
// — one histogram record on the happy path (the histogram's window count
// doubles as the request count, so there is no separate request counter
// to pay for) plus an error-counter add only on failures. Evaluate()
// folds the trailing window into a pass/fail per objective plus
// budget-consumption fractions (>1 = the objective is violated, the
// Google SRE "burn" framing).
#ifndef AKB_OBS_SLO_H_
#define AKB_OBS_SLO_H_

#include <cstdint>

#include "obs/rolling.h"

namespace akb::obs {

struct SloConfig {
  /// Latency objective: windowed p99 must stay at or under this.
  int64_t p99_target_micros = 5'000;
  /// Error objective: windowed error rate must stay at or under this.
  double max_error_rate = 0.001;
  /// Evaluation window.
  int64_t window_micros = 60 * 1'000'000;
  /// Resolution of the underlying rings (also bounds the deepest window
  /// other readers may ask the tracker's rollers for).
  int64_t bucket_width_micros = 1'000'000;
  size_t num_buckets = 301;
};

/// One evaluation of the objectives over the trailing window.
struct SloState {
  bool ok = true;          ///< latency_ok && errors_ok
  bool latency_ok = true;
  bool errors_ok = true;
  int64_t window_micros = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  double qps = 0.0;
  double p99_micros = 0.0;
  double error_rate = 0.0;
  /// Observed / allowed; > 1 means the objective is violated. Zero
  /// requests consume no budget.
  double latency_budget_used = 0.0;
  double error_budget_used = 0.0;
};

class SloTracker {
 public:
  explicit SloTracker(const SloConfig& config = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// One request: its latency and whether it failed.
  void RecordRequest(int64_t latency_micros, bool error, int64_t now_micros);

  SloState Evaluate(int64_t now_micros) const;

  const SloConfig& config() const { return config_; }
  /// The rollers, for reporting other windows (10 s / 1 m / 5 m) off the
  /// same data the SLO is judged on. Request counts and QPS come from the
  /// latency windows (WindowStats::count / rate_per_sec).
  const RollingCounter& error_counter() const { return errors_; }
  const RollingHistogram& latency() const { return latency_; }

 private:
  SloConfig config_;
  RollingCounter errors_;
  RollingHistogram latency_;
};

}  // namespace akb::obs

#endif  // AKB_OBS_SLO_H_

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <thread>

#include "common/string_util.h"
#include "common/table.h"
#include "obs/json.h"

namespace akb::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Small per-thread index used to pick a counter shard. Dense ids (not the
/// hash of std::thread::id) so the first kShards threads never collide.
size_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id % Counter::kShards;
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Counter

void Counter::Add(int64_t n) {
  if (!MetricsEnabled()) return;
  shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------------ Gauge

void Gauge::UpdateMax(int64_t v) {
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::Set(int64_t v) {
  if (!MetricsEnabled()) return;
  value_.store(v, std::memory_order_relaxed);
  UpdateMax(v);
}

void Gauge::Add(int64_t delta) {
  if (!MetricsEnabled()) return;
  int64_t v = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  UpdateMax(v);
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram

namespace {
size_t BucketOf(int64_t value) {
  return std::bit_width(static_cast<uint64_t>(value));
}
}  // namespace

void Histogram::Record(int64_t value) {
  if (!MetricsEnabled()) return;
  if (value < 0) value = 0;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  // INT64_MAX is the empty sentinel, but it is also a recordable value;
  // only report 0 when nothing was actually recorded.
  return (v == INT64_MAX && Count() == 0) ? 0 : v;
}

double Histogram::Mean() const {
  int64_t n = Count();
  return n ? static_cast<double>(Sum()) / static_cast<double>(n) : 0.0;
}

int64_t Histogram::BucketCount(size_t bucket) const {
  return bucket < kBuckets ? buckets_[bucket].load(std::memory_order_relaxed)
                           : 0;
}

double Histogram::Percentile(double p) const {
  int64_t total = Count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // The extremes are observed exactly; interpolation should never move
  // them.
  if (p == 0.0) return static_cast<double>(Min());
  if (p == 100.0) return static_cast<double>(Max());
  double rank = p / 100.0 * static_cast<double>(total);
  int64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    int64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Linear interpolation inside [2^(b-1), 2^b), clamped to observed
      // min/max so tiny samples don't report below-min estimates and the
      // top bucket can't report above the recorded maximum. Bucket bounds
      // are computed in floating point: 1 << b overflows int64 at b = 63.
      double lo = b == 0 ? 0.0 : std::ldexp(1.0, int(b) - 1);
      double hi = std::ldexp(1.0, int(b));
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      double estimate = lo + frac * (hi - lo);
      estimate = std::max(estimate, static_cast<double>(Min()));
      estimate = std::min(estimate, static_cast<double>(Max()));
      return estimate;
    }
    seen += in_bucket;
  }
  return static_cast<double>(Max());
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    MetricSnapshotEntry entry;
    entry.name = name;
    entry.kind = MetricKind::kCounter;
    entry.value = counter->Value();
    snapshot.entries.push_back(std::move(entry));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshotEntry entry;
    entry.name = name;
    entry.kind = MetricKind::kGauge;
    entry.value = gauge->Value();
    entry.max = gauge->Max();
    snapshot.entries.push_back(std::move(entry));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshotEntry entry;
    entry.name = name;
    entry.kind = MetricKind::kHistogram;
    entry.count = histogram->Count();
    entry.sum = histogram->Sum();
    entry.min = histogram->Min();
    entry.max = histogram->Max();
    entry.p50 = histogram->Percentile(50);
    entry.p90 = histogram->Percentile(90);
    entry.p99 = histogram->Percentile(99);
    snapshot.entries.push_back(std::move(entry));
  }
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// --------------------------------------------------------------- Snapshot

const MetricSnapshotEntry* MetricsSnapshot::Find(std::string_view name)
    const {
  for (const auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::DiffFrom(const MetricsSnapshot& before)
    const {
  MetricsSnapshot diff;
  for (const MetricSnapshotEntry& entry : entries) {
    MetricSnapshotEntry delta = entry;
    if (const MetricSnapshotEntry* prev = before.Find(entry.name)) {
      switch (entry.kind) {
        case MetricKind::kCounter:
          delta.value -= prev->value;
          break;
        case MetricKind::kGauge:
          break;  // gauges are point-in-time
        case MetricKind::kHistogram:
          // count/sum subtract cleanly; min/max/percentiles stay cumulative
          // (bucket-level diffing is not worth the complexity here).
          delta.count -= prev->count;
          delta.sum -= prev->sum;
          break;
      }
    }
    // Drop metrics this interval never touched, so per-run reports stay
    // readable even though the registry is process-global.
    bool touched = delta.kind == MetricKind::kHistogram
                       ? delta.count != 0
                       : delta.value != 0 || delta.max != 0;
    if (touched) diff.entries.push_back(std::move(delta));
  }
  return diff;
}

namespace {
std::string_view KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}
}  // namespace

std::string MetricsSnapshot::ToJson(int indent) const {
  Json root = Json::Object();
  root.Set("schema", "akb-metrics-v1");
  Json list = Json::Array();
  for (const MetricSnapshotEntry& entry : entries) {
    Json m = Json::Object();
    m.Set("name", entry.name);
    m.Set("kind", KindName(entry.kind));
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.Set("value", entry.value);
        break;
      case MetricKind::kGauge:
        m.Set("value", entry.value);
        m.Set("max", entry.max);
        break;
      case MetricKind::kHistogram:
        m.Set("count", entry.count);
        m.Set("sum", entry.sum);
        m.Set("min", entry.min);
        m.Set("max", entry.max);
        m.Set("p50", entry.p50);
        m.Set("p90", entry.p90);
        m.Set("p99", entry.p99);
        break;
    }
    list.Append(std::move(m));
  }
  root.Set("metrics", std::move(list));
  return root.Dump(indent);
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  TextTable scalars({"Metric", "Kind", "Value", "Max"});
  scalars.set_title("Counters and gauges");
  size_t num_scalars = 0;
  for (const MetricSnapshotEntry& entry : entries) {
    if (entry.kind == MetricKind::kHistogram) continue;
    ++num_scalars;
    scalars.AddRow({entry.name, std::string(KindName(entry.kind)),
                    FormatWithCommas(entry.value),
                    entry.kind == MetricKind::kGauge
                        ? FormatWithCommas(entry.max)
                        : std::string("-")});
  }
  if (num_scalars) out += scalars.ToString();

  TextTable hists(
      {"Histogram", "Count", "Mean", "p50", "p90", "p99", "Max"});
  hists.set_title("Histograms (microseconds unless named otherwise)");
  size_t num_hists = 0;
  for (const MetricSnapshotEntry& entry : entries) {
    if (entry.kind != MetricKind::kHistogram) continue;
    ++num_hists;
    double mean = entry.count
                      ? static_cast<double>(entry.sum) /
                            static_cast<double>(entry.count)
                      : 0.0;
    hists.AddRow({entry.name, FormatWithCommas(entry.count),
                  FormatDouble(mean, 1), FormatDouble(entry.p50, 1),
                  FormatDouble(entry.p90, 1), FormatDouble(entry.p99, 1),
                  FormatWithCommas(entry.max)});
  }
  if (num_hists) {
    if (num_scalars) out += "\n";
    out += hists.ToString();
  }
  return out;
}

// ------------------------------------------------------- dynamic helpers

void CounterAdd(std::string_view name, int64_t n) {
#ifndef AKB_METRICS_DISABLED
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().GetCounter(name)->Add(n);
#else
  (void)name;
  (void)n;
#endif
}

void GaugeSet(std::string_view name, int64_t v) {
#ifndef AKB_METRICS_DISABLED
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().GetGauge(name)->Set(v);
#else
  (void)name;
  (void)v;
#endif
}

void HistogramRecord(std::string_view name, int64_t v) {
#ifndef AKB_METRICS_DISABLED
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().GetHistogram(name)->Record(v);
#else
  (void)name;
  (void)v;
#endif
}

}  // namespace akb::obs

// akb::obs rolling-window metrics — counters and histograms over the last
// N seconds instead of the process lifetime.
//
// The registry's Counter/Histogram answer "how many since startup"; a
// serving process needs "what is QPS / p99 *right now*". RollingCounter
// and RollingHistogram keep a ring of fixed-width time buckets (default
// 1 s wide, 5 min deep) and aggregate any trailing window out of it, so
// one instance serves the 10 s, 1 m, and 5 m views at once.
//
// Record path, in the style of the registry's sharded counters: no locks,
// only relaxed atomics. Each ring slot carries the absolute bucket number
// it currently represents (its epoch); a writer that lands on a stale slot
// CAS-claims it for the current bucket and zeroes it before adding. A
// concurrent add racing that zero on the bucket boundary can be lost —
// an accepted metrics-grade inaccuracy (one event per boundary per
// thread at worst), never a data race or a torn read.
//
// Readers aggregate the slots whose epoch falls inside the requested
// window. All methods take an explicit `now_micros` (obs::NowMicros()
// in production) so tests drive time deterministically.
#ifndef AKB_OBS_ROLLING_H_
#define AKB_OBS_ROLLING_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace akb::obs {

/// Microseconds on the steady (monotonic) clock — the time base every
/// rolling window and query trace shares. Not wall time.
int64_t NowMicros();

/// Aggregate of one trailing window.
struct WindowStats {
  int64_t window_micros = 0;
  int64_t count = 0;
  int64_t sum = 0;
  /// count / window seconds (QPS when counting requests).
  double rate_per_sec = 0.0;
  double mean = 0.0;
  // Histogram-only (zero for RollingCounter windows).
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  int64_t max = 0;
};

/// Event counter over a ring of time buckets, thread-sharded like
/// obs::Counter so concurrent writers on one name do not bounce a line.
class RollingCounter {
 public:
  static constexpr size_t kShards = 8;

  /// `bucket_width_micros` is the ring resolution; `num_buckets` bounds
  /// the deepest answerable window (width × count). Defaults cover 5 min
  /// at 1 s resolution. One extra slot absorbs the in-progress bucket.
  explicit RollingCounter(int64_t bucket_width_micros = 1'000'000,
                          size_t num_buckets = 301);

  RollingCounter(const RollingCounter&) = delete;
  RollingCounter& operator=(const RollingCounter&) = delete;

  void Add(int64_t n, int64_t now_micros);
  void Increment(int64_t now_micros) { Add(1, now_micros); }

  /// Events in the trailing `window_micros` ending at `now_micros`
  /// (including the in-progress bucket). Windows deeper than the ring
  /// clamp to the ring depth.
  int64_t SumOver(int64_t window_micros, int64_t now_micros) const;

  /// SumOver plus the derived rate.
  WindowStats Over(int64_t window_micros, int64_t now_micros) const;

  int64_t bucket_width_micros() const { return width_; }
  size_t num_buckets() const { return slots_per_shard_; }

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};  ///< absolute bucket number, -1 = empty
    std::atomic<int64_t> value{0};
  };
  struct alignas(64) Shard {
    std::vector<Slot> slots;
  };

  int64_t width_;
  size_t slots_per_shard_;
  Shard shards_[kShards];
};

/// Latency histogram over a ring of time buckets: each slot is a compact
/// 64-bucket power-of-two histogram (same bucketing as obs::Histogram),
/// so a window aggregates to count/sum/p50/p90/p99. Slots are shared
/// across threads (relaxed adds, like the registry Histogram); only the
/// ring bookkeeping is per-slot.
class RollingHistogram {
 public:
  static constexpr size_t kValueBuckets = 64;

  explicit RollingHistogram(int64_t bucket_width_micros = 1'000'000,
                            size_t num_buckets = 301);

  RollingHistogram(const RollingHistogram&) = delete;
  RollingHistogram& operator=(const RollingHistogram&) = delete;

  /// Records `value` (clamped at 0) into the bucket for `now_micros`.
  void Record(int64_t value, int64_t now_micros);

  /// Percentiles are interpolated from the power-of-two value buckets
  /// (good to within 2×, like the registry histograms); max is exact per
  /// slot, so the window max is the max over live slots.
  WindowStats Over(int64_t window_micros, int64_t now_micros) const;

  int64_t bucket_width_micros() const { return width_; }
  size_t num_buckets() const { return slots_.size(); }

 private:
  // No per-slot count: it is the sum of the value buckets, so readers
  // derive it and the record path saves one atomic RMW.
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
    std::atomic<int64_t> values[kValueBuckets] = {};
  };

  int64_t width_;
  std::vector<Slot> slots_;
};

}  // namespace akb::obs

#endif  // AKB_OBS_ROLLING_H_

#include "obs/trace.h"

#include "obs/json.h"

namespace akb::obs {

namespace {

// Per-thread stack of open span indices (indices into spans_ of the
// session generation recorded alongside).
struct ThreadSpanStack {
  uint64_t generation = 0;
  std::vector<size_t> open;
};
thread_local ThreadSpanStack tls_stack;

constexpr int kGenerationBits = 16;
constexpr size_t kIndexMask =
    (size_t(1) << (64 - kGenerationBits)) - 1;

size_t PackHandle(uint64_t generation, size_t index) {
  return (size_t(generation & ((1u << kGenerationBits) - 1))
          << (64 - kGenerationBits)) |
         (index & kIndexMask);
}

}  // namespace

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession();  // never freed
  return *session;
}

void TraceSession::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  thread_ids_.clear();
  ++generation_;
  origin_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSession::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceSession::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  thread_ids_.clear();
  ++generation_;
}

size_t TraceSession::BeginSpan(std::string_view name) {
  if (!enabled()) return SIZE_MAX;
  uint64_t now_us = 0;
  size_t index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    now_us = uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - origin_)
                          .count());
    auto [it, inserted] = thread_ids_.emplace(
        std::this_thread::get_id(), uint32_t(thread_ids_.size()));
    TraceSpan span;
    span.name = std::string(name);
    span.start_us = now_us;
    span.tid = it->second;
    if (tls_stack.generation == generation_ && !tls_stack.open.empty()) {
      span.parent = tls_stack.open.back();
      span.depth = tls_stack.open.size();
    }
    index = spans_.size();
    spans_.push_back(std::move(span));
    if (tls_stack.generation != generation_) {
      tls_stack.generation = generation_;
      tls_stack.open.clear();
    }
    tls_stack.open.push_back(index);
    return PackHandle(generation_, index);
  }
}

void TraceSession::EndSpan(size_t handle) {
  if (handle == SIZE_MAX) return;
  size_t index = handle & kIndexMask;
  uint64_t generation = handle >> (64 - kGenerationBits);
  std::lock_guard<std::mutex> lock(mutex_);
  if ((generation_ & ((1u << kGenerationBits) - 1)) != generation ||
      index >= spans_.size()) {
    return;  // session was cleared since this span opened
  }
  uint64_t now_us = uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
  TraceSpan& span = spans_[index];
  span.dur_us = now_us >= span.start_us ? now_us - span.start_us : 0;
  if (tls_stack.generation == generation_ && !tls_stack.open.empty() &&
      tls_stack.open.back() == index) {
    tls_stack.open.pop_back();
  }
}

std::vector<TraceSpan> TraceSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t TraceSession::num_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::string TraceSession::ToChromeJson() const {
  std::vector<TraceSpan> spans = Snapshot();
  Json events = Json::Array();
  for (const TraceSpan& span : spans) {
    Json event = Json::Object();
    event.Set("name", span.name);
    event.Set("cat", "akb");
    event.Set("ph", "X");
    event.Set("ts", int64_t(span.start_us));
    event.Set("dur", int64_t(span.dur_us));
    event.Set("pid", 1);
    event.Set("tid", int64_t(span.tid));
    Json args = Json::Object();
    args.Set("depth", int64_t(span.depth));
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  return events.Dump(1);
}

}  // namespace akb::obs

#include "obs/slo.h"

namespace akb::obs {

SloTracker::SloTracker(const SloConfig& config)
    : config_(config),
      errors_(config.bucket_width_micros, config.num_buckets),
      latency_(config.bucket_width_micros, config.num_buckets) {}

void SloTracker::RecordRequest(int64_t latency_micros, bool error,
                               int64_t now_micros) {
  if (error) errors_.Add(1, now_micros);
  latency_.Record(latency_micros, now_micros);
}

SloState SloTracker::Evaluate(int64_t now_micros) const {
  SloState state;
  state.window_micros = config_.window_micros;
  WindowStats lat = latency_.Over(config_.window_micros, now_micros);
  state.requests = lat.count;
  state.errors = errors_.SumOver(config_.window_micros, now_micros);
  state.qps = lat.rate_per_sec;
  state.p99_micros = lat.p99;
  state.error_rate = state.requests > 0
                         ? double(state.errors) / double(state.requests)
                         : 0.0;
  if (state.requests > 0) {
    if (config_.p99_target_micros > 0) {
      state.latency_budget_used =
          state.p99_micros / double(config_.p99_target_micros);
    }
    if (config_.max_error_rate > 0) {
      state.error_budget_used = state.error_rate / config_.max_error_rate;
    } else {
      state.error_budget_used = state.errors > 0 ? 2.0 : 0.0;
    }
  }
  state.latency_ok = state.latency_budget_used <= 1.0;
  state.errors_ok = state.error_budget_used <= 1.0;
  state.ok = state.latency_ok && state.errors_ok;
  return state;
}

}  // namespace akb::obs

// Synthetic web sites: the input to the DOM-tree extractor (Algorithm 1).
//
// Real sites (the paper's example: imdb.com for Film) render entity pages
// from site-specific templates: an entity heading plus attribute rows laid
// out in a site-chosen structure (infobox table / definition list / list
// items / styled divs), surrounded by nav, ads, and footer noise. Tag paths
// from the entity node to attribute labels are regular *within* a site but
// arbitrary *across* sites — exactly the property Algorithm 1 exploits and
// the reason it induces patterns per page instead of learning global ones.
//
// Each generated page carries a ledger of the (label surface, canonical
// attribute, value) pairs actually rendered, so extraction precision and
// recall are computable exactly.
#ifndef AKB_SYNTH_SITE_GEN_H_
#define AKB_SYNTH_SITE_GEN_H_

#include <string>
#include <vector>

#include "synth/world.h"

namespace akb::synth {

/// Per-site row layout for attribute pairs.
enum class LayoutStyle : uint8_t {
  kInfoboxTable = 0,    ///< table.infobox > tr > (th label, td > span value)
  kDefinitionList = 1,  ///< dl > (dt label, dd > span value)
  kListItems = 2,       ///< ul > li > (span.key label, em value)
  kDivRows = 3,         ///< div.props > div.row > (div.k label, div.v value)
};
inline constexpr int kNumLayoutStyles = 4;

struct SiteConfig {
  std::string class_name;
  size_t num_sites = 4;
  size_t pages_per_site = 25;
  /// Fraction of the class's attributes a page renders (sampled per page).
  double attribute_coverage = 0.3;
  /// Label surface noise (variants / misspellings of attribute names).
  double label_variant_rate = 0.12;
  double label_misspell_rate = 0.03;
  /// Probability a rendered value is wrong.
  double value_error_rate = 0.05;
  /// Probability a label is wrapped in a presentational tag (<b>/<em>);
  /// tag-path canonicalization must see through this styling jitter.
  double label_style_rate = 0.15;
  /// Probability a location value is reported at a coarser level.
  double generalize_rate = 0.2;
  /// Mean number of nav/ads/footer noise blocks per page.
  double mean_noise_blocks = 3.0;
  /// Extra random wrapper divs around the attribute block (0..n per page).
  size_t max_page_wrappers = 2;
  /// Force every site to one layout (kNumLayoutStyles = pick per site at
  /// random, the default).
  int forced_style = kNumLayoutStyles;
  uint64_t seed = 3;
};

/// Ledger entry: one attribute pair as rendered on a page.
struct RenderedPair {
  std::string label;            ///< surface form of the attribute name
  AttributeId attribute = 0;    ///< canonical id in the world class
  std::string value;            ///< surface form of the value
  bool value_correct = true;
};

struct WebPage {
  std::string url;
  std::string html;
  EntityId entity = 0;
  std::string entity_name;
  std::vector<RenderedPair> pairs;
};

struct WebSite {
  std::string domain;
  std::string class_name;
  LayoutStyle style = LayoutStyle::kInfoboxTable;
  std::vector<WebPage> pages;
};

/// Generates `config.num_sites` sites about `config.class_name`.
std::vector<WebSite> GenerateSites(const World& world,
                                   const SiteConfig& config);

/// Generates only sites [begin, end) of the same deterministic sequence:
/// each site draws its RNG from a per-site fork of the master seed, so
/// concatenating disjoint ranges in order reproduces GenerateSites()
/// byte-for-byte. This is the shard API the parallel pipeline renders
/// (class, site-range) units with.
std::vector<WebSite> GenerateSiteRange(const World& world,
                                       const SiteConfig& config,
                                       size_t begin, size_t end);

}  // namespace akb::synth

#endif  // AKB_SYNTH_SITE_GEN_H_

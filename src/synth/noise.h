// Surface-form noise models.
//
// The paper's fusion phase must identify "misspellings, synonyms, and
// sub-attributes" (§3); its extraction phase must dedup attribute variants
// across KBs. These generators produce exactly that noise: the same canonical
// attribute appears as "birth place", "place of birth", "birthPlace",
// "birth_place", or a misspelled form, depending on the source.
#ifndef AKB_SYNTH_NOISE_H_
#define AKB_SYNTH_NOISE_H_

#include <string>
#include <string_view>

#include "common/random.h"

namespace akb::synth {

/// Styles a canonical phrase can be rendered in by different sources.
enum class SurfaceStyle : uint8_t {
  kPlain = 0,      ///< "birth place"
  kTitle = 1,      ///< "Birth Place"
  kSnake = 2,      ///< "birth_place"
  kCamel = 3,      ///< "birthPlace"
  kHyphen = 4,     ///< "birth-place"
  kOfForm = 5,     ///< "place of birth" (head noun fronted)
  kMisspelled = 6, ///< one random character edit
};
inline constexpr int kNumSurfaceStyles = 7;

/// Renders `phrase` (lowercase, space-separated) in the given style.
/// kMisspelled and kOfForm consume randomness from `rng`.
std::string RenderSurface(std::string_view phrase, SurfaceStyle style,
                          Rng* rng);

/// Applies one random edit (swap / drop / duplicate / replace a character).
/// Single-character strings get a replacement edit.
std::string Misspell(std::string_view word, Rng* rng);

/// Picks a style: kPlain with probability 1-variant_rate-misspell_rate,
/// a non-trivial variant with probability variant_rate, misspelled with
/// probability misspell_rate.
SurfaceStyle SampleStyle(double variant_rate, double misspell_rate, Rng* rng);

/// Substitutes every token that has a known synonym ("total budget" ->
/// "overall cost"). Unlike casing/of-form variants, a synonym surface does
/// NOT normalize back to the original phrase — merging it requires
/// value-overlap schema alignment, not string matching. Returns the input
/// unchanged when no token has a synonym.
std::string SynonymSurface(std::string_view phrase);

/// True iff SynonymSurface(phrase) differs from phrase.
bool HasSynonym(std::string_view phrase);

}  // namespace akb::synth

#endif  // AKB_SYNTH_NOISE_H_

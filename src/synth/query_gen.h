// Synthetic search-engine query stream.
//
// Substitutes for the 29,283,918 Google+AOL query records of the paper's
// Table 3 experiment. Per class, the generator emits `relevant_records`
// queries that mention one of the class's entities; a fraction are
// *attribute queries* rendered from the paper's own pattern family
// ("what is the A of E", "the A of E", "E's A"), the rest are navigational
// ("E reviews", "buy E online"). Attribute mentions are Zipf-skewed over a
// per-class queried-attribute pool, so thresholding on support yields the
// Table 3 "credible attributes" shape: classes with few relevant records
// (Hotel) starve below the credibility threshold and extract nothing.
// Background junk queries fill the stream to `total_records`.
#ifndef AKB_SYNTH_QUERY_GEN_H_
#define AKB_SYNTH_QUERY_GEN_H_

#include <string>
#include <vector>

#include "synth/world.h"

namespace akb::synth {

struct QueryClassConfig {
  std::string class_name;
  /// Queries mentioning an entity of this class.
  size_t relevant_records = 1000;
  /// Distinct attributes that appear in this class's attribute queries
  /// (a prefix of the class's canonical inventory), Zipf-skewed.
  size_t queried_attributes = 40;
  /// Fraction of relevant queries that are navigational (no attribute).
  double navigational_rate = 0.35;
};

struct QueryLogConfig {
  std::vector<QueryClassConfig> classes;
  /// Total stream size; the remainder beyond relevant records is junk.
  size_t total_records = 20000;
  /// Zipf exponent over the queried-attribute pool.
  double attribute_zipf = 0.9;
  double misspell_rate = 0.02;
  uint64_t seed = 11;

  /// Table 3 workload at 1/scale_divisor of the paper's volume
  /// (divisor 100: 292,839 records; Book 2,596 relevant, ... Hotel 155).
  static QueryLogConfig PaperDefault(size_t scale_divisor = 100);
};

/// One query record. `cls`/`attribute` are the generation ledger
/// (kNoLedger when not applicable); extractors must only look at `query`.
struct QueryRecord {
  std::string query;
  static constexpr uint32_t kNoLedger = static_cast<uint32_t>(-1);
  uint32_t cls = kNoLedger;
  uint32_t attribute = kNoLedger;
};

/// Generates the full stream in shuffled order.
std::vector<QueryRecord> GenerateQueryLog(const World& world,
                                          const QueryLogConfig& config);

}  // namespace akb::synth

#endif  // AKB_SYNTH_QUERY_GEN_H_

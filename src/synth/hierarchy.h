// Hierarchical value spaces (paper §3.2).
//
// The paper's example: South Australia - Australia - Adelaide form a chain in
// the location hierarchy, so (X, birth place, Australia) and (X, birth place,
// Adelaide) are both true even for a functional attribute. We model such
// domains as a rooted tree of values; ground truth picks a leaf, and sources
// may (correctly) report any ancestor at a coarser level of abstraction.
#ifndef AKB_SYNTH_HIERARCHY_H_
#define AKB_SYNTH_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace akb::synth {

/// Index of a value within a ValueHierarchy; root is node 0.
using HierarchyNodeId = uint32_t;
inline constexpr HierarchyNodeId kHierarchyRoot = 0;
inline constexpr HierarchyNodeId kNoHierarchyNode =
    static_cast<HierarchyNodeId>(-1);

/// A rooted tree of named values.
class ValueHierarchy {
 public:
  ValueHierarchy();

  /// Adds a child value under `parent`; names must be globally unique.
  HierarchyNodeId AddChild(HierarchyNodeId parent, std::string name);

  size_t size() const { return names_.size(); }
  const std::string& name(HierarchyNodeId id) const { return names_[id]; }
  HierarchyNodeId parent(HierarchyNodeId id) const { return parents_[id]; }
  const std::vector<HierarchyNodeId>& children(HierarchyNodeId id) const {
    return children_[id];
  }
  size_t depth(HierarchyNodeId id) const { return depths_[id]; }

  /// Id of the value with this name, or kNoHierarchyNode.
  HierarchyNodeId Find(const std::string& name) const;

  /// True iff `ancestor` lies on the root path of `node` (inclusive).
  bool IsAncestorOrSelf(HierarchyNodeId ancestor, HierarchyNodeId node) const;

  /// Chain from the root (exclusive) down to `node` (inclusive).
  std::vector<HierarchyNodeId> RootChain(HierarchyNodeId node) const;

  /// All leaves (values with no children), excluding the root if childless.
  std::vector<HierarchyNodeId> Leaves() const;

  /// Lowest common ancestor (may be the root).
  HierarchyNodeId Lca(HierarchyNodeId a, HierarchyNodeId b) const;

 private:
  std::vector<std::string> names_;
  std::vector<HierarchyNodeId> parents_;
  std::vector<std::vector<HierarchyNodeId>> children_;
  std::vector<size_t> depths_;
  std::unordered_map<std::string, HierarchyNodeId> by_name_;
};

/// Builds a three-level location hierarchy: `countries` children of the
/// root, each with `regions_per_country` regions of `cities_per_region`
/// cities. Names come from a PlaceNameGenerator seeded by `seed`.
ValueHierarchy BuildLocationHierarchy(size_t countries,
                                      size_t regions_per_country,
                                      size_t cities_per_region, uint64_t seed);

}  // namespace akb::synth

#endif  // AKB_SYNTH_HIERARCHY_H_

#include "synth/names.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace akb::synth {

namespace {

const char* const kOnsets[] = {"b",  "br", "c",  "d",  "dr", "f",  "g",
                               "gr", "h",  "k",  "kel", "l", "m",  "mar",
                               "n",  "p",  "r",  "s",  "t",  "v",  "z"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ia", "ei", "ou"};
const char* const kCodas[] = {"n",   "r",   "l",   "s",   "th", "nd",
                              "ria", "nia", "dor", "mar", "vik", "ton"};

const char* const kAdjectives[] = {
    "silent",  "golden",  "hidden", "broken",  "distant", "eternal",
    "crimson", "frozen",  "gentle", "hollow",  "iron",    "lonely",
    "midnight", "pale",   "quiet",  "restless", "scarlet", "shattered",
    "velvet",  "wandering", "winter", "ancient", "burning", "fading"};

const char* const kTitleNouns[] = {
    "harbor", "garden", "mirror",  "river",   "empire",  "horizon",
    "letter", "voyage", "orchard", "citadel", "lantern", "meadow",
    "anthem", "canyon", "harvest", "journey", "kingdom", "labyrinth",
    "monsoon", "odyssey", "paradox", "quarry", "refuge", "sonata"};

const char* const kFirstNames[] = {
    "elena", "marcus", "sofia",  "viktor", "amara",  "dmitri",
    "freya", "hassan", "ingrid", "jonas",  "leila",  "mateo",
    "nadia", "omar",   "petra",  "quentin", "rosa",  "stefan",
    "talia", "ulrich", "vera",   "wendell", "yara",  "zoran"};

const char* const kLastNames[] = {
    "marsh",   "calder",  "voss",    "renner",  "hale",   "draven",
    "ferro",   "glass",   "holt",    "ivers",   "keating", "lunde",
    "moreau",  "norell",  "okafor",  "petrov",  "quist",  "ramsey",
    "santos",  "thorne",  "ulvang",  "varga",   "whitman", "zeller"};

const char* const kAttrModifiers[] = {
    "original", "total",    "average",  "primary",  "official", "annual",
    "main",     "initial",  "final",    "current",  "former",   "estimated",
    "maximum",  "minimum",  "national", "regional", "local",    "gross",
    "net",      "daily",    "overall",  "public",   "private",  "historic",
    "secondary", "combined", "internal", "external", "leading",  "typical"};

const char* const kAttrNouns[] = {
    "title",      "name",       "budget",     "length",     "author",
    "director",   "publisher",  "language",   "genre",      "capital",
    "population", "area",       "currency",   "anthem",     "motto",
    "founder",    "enrollment", "endowment",  "campus",     "mascot",
    "chancellor", "rating",     "rate",       "capacity",   "address",
    "manager",    "revenue",    "runtime",    "producer",   "composer",
    "editor",     "isbn",       "pages",      "format",     "edition",
    "circulation", "altitude",  "climate",    "timezone",   "religion",
    "president",  "dean",       "faculty",    "tuition",    "ranking",
    "amenities",  "cuisine",    "checkout",   "suites",     "stars",
    "district",   "borough",    "exports",    "imports",    "coastline",
    "debut",      "sequel",     "soundtrack", "screenplay", "cast"};

}  // namespace

std::string PlaceNameGenerator::Next() {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::string name;
    size_t syllables = 1 + rng_.Index(2);
    for (size_t s = 0; s <= syllables; ++s) {
      name += kOnsets[rng_.Index(std::size(kOnsets))];
      name += kVowels[rng_.Index(std::size(kVowels))];
    }
    name += kCodas[rng_.Index(std::size(kCodas))];
    name = TitleCase(name);
    if (used_.insert(name).second) return name;
  }
  // Fall back to a counter suffix; practically unreachable.
  std::string name = "Place" + std::to_string(used_.size());
  used_.insert(name);
  return name;
}

std::string TitleGenerator::Next() {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::string name = "The ";
    name += TitleCase(kAdjectives[rng_.Index(std::size(kAdjectives))]);
    name += " ";
    name += TitleCase(kTitleNouns[rng_.Index(std::size(kTitleNouns))]);
    if (attempt > 100) {
      // Dense usage: extend with a numeral suffix (space grows to ~500k).
      name += " ";
      name += std::to_string(2 + rng_.Index(997));
    }
    if (used_.insert(name).second) return name;
  }
  std::string name = "The Untitled " + std::to_string(used_.size());
  used_.insert(name);
  return name;
}

std::string PersonNameGenerator::Next() {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::string name =
        TitleCase(kFirstNames[rng_.Index(std::size(kFirstNames))]);
    name += " ";
    name += TitleCase(kLastNames[rng_.Index(std::size(kLastNames))]);
    if (attempt > 200) {
      name += " ";
      name.push_back(static_cast<char>('A' + rng_.Index(26)));
    }
    if (used_.insert(name).second) return name;
  }
  std::string name = "Person " + std::to_string(used_.size());
  used_.insert(name);
  return name;
}

std::vector<std::string> AttributePhraseGenerator::Generate(size_t count) {
  // Build the full cross product deterministically, shuffle, take a prefix.
  std::vector<std::string> pool;
  pool.reserve(std::size(kAttrNouns) * (1 + std::size(kAttrModifiers)));
  for (const char* noun : kAttrNouns) pool.emplace_back(noun);
  for (const char* mod : kAttrModifiers) {
    for (const char* noun : kAttrNouns) {
      pool.push_back(std::string(mod) + " " + noun);
    }
  }
  rng_.Shuffle(&pool);
  if (count > pool.size()) {
    // Extend with numbered metrics; keeps uniqueness for huge requests.
    size_t extra = count - pool.size();
    for (size_t i = 0; i < extra; ++i) {
      pool.push_back("metric " + std::to_string(i + 1));
    }
  }
  pool.resize(count);
  return pool;
}

}  // namespace akb::synth

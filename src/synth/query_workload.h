// Synthetic KB query workload — the serving-side counterpart of the
// query-stream generator. Where query_gen.h fabricates the *extraction*
// input (natural-language search queries), this fabricates the *read*
// load against a finished KB: a seeded mix of triple patterns drawn from
// a loaded store, standing in for the "heavy traffic from millions of
// users" the ROADMAP targets.
//
// The mix models an entity-centric serving workload: mostly point lookups
// and subject scans ("everything about entity E"), some predicate and
// object scans (analytics-ish), and a slice of guaranteed misses (ids the
// KB has never seen). Pattern targets are Zipf-skewed over the store's
// triples so repeated hot keys exist for a result cache to earn its keep.
#ifndef AKB_SYNTH_QUERY_WORKLOAD_H_
#define AKB_SYNTH_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "rdf/triple_store.h"
#include "serve/bgp.h"

namespace akb::synth {

struct QueryWorkloadConfig {
  size_t num_queries = 10000;
  uint64_t seed = 17;

  /// Shape mix; weights are normalized over their sum.
  double point_weight = 0.35;          ///< (s p o), present in the KB
  double subject_scan_weight = 0.25;   ///< (s ? ?)
  double subject_predicate_weight = 0.15;  ///< (s p ?)
  double predicate_scan_weight = 0.08;     ///< (? p ?)
  double object_scan_weight = 0.07;        ///< (? ? o)
  double miss_weight = 0.10;  ///< a bound position that matches nothing

  /// Zipf exponent over the store's triples: hot entities get queried far
  /// more often than the tail (0 = uniform).
  double zipf = 0.8;
};

/// Generates `config.num_queries` patterns against `store`'s id space.
/// Deterministic in (store contents, config). The store only provides the
/// triple population and dictionary size; it is not queried.
std::vector<rdf::TriplePattern> GenerateQueryWorkload(
    const rdf::TripleStore& store, const QueryWorkloadConfig& config);

/// Join-shaped (BGP) workload against a loaded KB — the access pattern
/// the related work's KB consumers actually issue: star lookups like
/// "attributes of entities of class C whose X = V" (2-4 patterns sharing
/// one entity variable, selective bound-object arms plus an open tail)
/// and, where the KB's object ids reappear as subjects, two-hop path
/// queries. Subjects are Zipf-skewed so hot joins repeat and the BGP
/// result cache has something to do.
struct BgpWorkloadConfig {
  size_t num_queries = 1000;
  uint64_t seed = 29;
  /// Zipf exponent over the store's triples (0 = uniform).
  double zipf = 0.8;
  /// Patterns per query, clamped to [2, serve::kMaxBgpPatterns].
  size_t min_patterns = 2;
  size_t max_patterns = 4;
  /// Fraction of queries that try a two-hop path template (falls back to
  /// a star when the sampled object never appears as a subject).
  double chain_weight = 0.15;
  /// Probability the star's last arm keeps a variable object (an open
  /// "... ?v" tail) instead of a fully bound one.
  double open_tail_weight = 0.8;
};

/// Deterministic in (store contents, config). Every generated query
/// passes serve::ValidateBgp and joins on shared variables (no
/// cross-products).
std::vector<serve::BgpQuery> GenerateBgpWorkload(
    const rdf::TripleStore& store, const BgpWorkloadConfig& config);

}  // namespace akb::synth

#endif  // AKB_SYNTH_QUERY_WORKLOAD_H_

#include "synth/query_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "synth/noise.h"

namespace akb::synth {

namespace {

const char* const kWhWords[] = {"what", "how", "when", "who"};

const char* const kNavSuffixes[] = {"reviews",  "photos", "tickets",
                                    "online",   "wiki",   "news",
                                    "near me",  "deals",  "official site"};

const char* const kJunkQueries[] = {
    "weather tomorrow",        "cheap flights",        "pizza delivery",
    "currency converter",      "news headlines",       "football scores",
    "download free music",     "movie showtimes",      "driving directions",
    "birthday gift ideas",     "stock market today",   "local restaurants",
    "how to tie a tie",        "translate hello",      "lottery numbers",
    "best laptop 2015",        "horoscope today",      "recipe chicken soup"};

std::string MaybeMisspell(std::string s, double rate, Rng* rng) {
  if (rng->Bernoulli(rate)) return Misspell(s, rng);
  return s;
}

// Renders an attribute query from the paper's pattern family.
std::string AttributeQuery(const std::string& attribute,
                           const std::string& entity, Rng* rng) {
  switch (rng->Index(4)) {
    case 0: {
      std::string q(kWhWords[rng->Index(std::size(kWhWords))]);
      q += " is the " + attribute + " of ";
      if (rng->Bernoulli(0.4)) q += "the ";
      q += entity;
      return q;
    }
    case 1: {
      std::string q = "the " + attribute + " of ";
      if (rng->Bernoulli(0.4)) q += "the ";
      q += entity;
      return q;
    }
    case 2:
      return entity + "'s " + attribute;
    default:
      return attribute + " of " + entity;
  }
}

std::string NavigationalQuery(const std::string& entity, Rng* rng) {
  if (rng->Bernoulli(0.25)) return entity;
  std::string q = entity;
  q += " ";
  q += kNavSuffixes[rng->Index(std::size(kNavSuffixes))];
  if (rng->Bernoulli(0.2)) q = "buy " + q;
  return q;
}

}  // namespace

QueryLogConfig QueryLogConfig::PaperDefault(size_t scale_divisor) {
  if (scale_divisor == 0) scale_divisor = 1;
  QueryLogConfig config;
  config.seed = 11;
  config.attribute_zipf = 0.7;
  config.total_records = 29283918 / scale_divisor;
  config.classes = {
      // class, relevant records (Table 3 / divisor), queried attrs, nav rate
      {"Book", 259556 / scale_divisor, 100, 0.30},
      {"Film", 403672 / scale_divisor, 62, 0.50},
      {"Country", 393244 / scale_divisor, 210, 0.30},
      {"University", 24633 / scale_divisor, 25, 0.40},
      {"Hotel", 15544 / scale_divisor, 6, 0.97},
  };
  return config;
}

std::vector<QueryRecord> GenerateQueryLog(const World& world,
                                          const QueryLogConfig& config) {
  std::vector<QueryRecord> records;
  Rng master(config.seed);

  size_t relevant_total = 0;
  for (const QueryClassConfig& cc : config.classes) {
    Rng rng = master.Fork();
    auto cls_id = world.FindClass(cc.class_name);
    if (!cls_id) {
      AKB_LOG(Warning) << "GenerateQueryLog: unknown class '" << cc.class_name
                       << "'";
      continue;
    }
    const WorldClass& wc = world.cls(*cls_id);
    if (wc.entities.empty()) continue;
    size_t pool = std::min(cc.queried_attributes, wc.attributes.size());
    ZipfTable attr_zipf(std::max<size_t>(1, pool), config.attribute_zipf);
    // Entity popularity is Zipf-skewed too (a few famous entities dominate).
    ZipfTable entity_zipf(wc.entities.size(), 0.8);

    for (size_t i = 0; i < cc.relevant_records; ++i) {
      const Entity& entity = wc.entities[entity_zipf.Sample(&rng)];
      QueryRecord record;
      record.cls = *cls_id;
      if (pool > 0 && !rng.Bernoulli(cc.navigational_rate)) {
        uint32_t attr = static_cast<uint32_t>(attr_zipf.Sample(&rng));
        record.attribute = attr;
        record.query = AttributeQuery(ToLower(wc.attributes[attr].name),
                                      ToLower(entity.name), &rng);
      } else {
        record.query = NavigationalQuery(ToLower(entity.name), &rng);
      }
      record.query = MaybeMisspell(std::move(record.query),
                                   config.misspell_rate, &rng);
      records.push_back(std::move(record));
    }
    relevant_total += cc.relevant_records;
  }

  // Background junk.
  Rng junk_rng = master.Fork();
  size_t junk = config.total_records > relevant_total
                    ? config.total_records - relevant_total
                    : 0;
  for (size_t i = 0; i < junk; ++i) {
    QueryRecord record;
    record.query = kJunkQueries[junk_rng.Index(std::size(kJunkQueries))];
    if (junk_rng.Bernoulli(0.3)) {
      record.query += " ";
      record.query += junk_rng.Identifier(4);
    }
    records.push_back(std::move(record));
  }

  Rng shuffle_rng = master.Fork();
  shuffle_rng.Shuffle(&records);
  return records;
}

}  // namespace akb::synth

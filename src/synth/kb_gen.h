// Synthetic KB snapshots standing in for Freebase and DBpedia.
//
// Real large-scale KBs have two property layers: a small *declared* schema
// (the "# Attributes" columns of the paper's Tables 1-2: Freebase's
// University type has 9 properties) and a much larger set of properties
// actually *used* on instances (raw infobox properties, user-added keys).
// The paper's existing-KB extractor mines the instance layer, normalizes and
// dedups surface variants, and thereby grows the usable attribute set
// (Table 2's "Extrac." columns); combining two KBs grows it further
// ("Combine" column).
//
// A KbSnapshot generated here reproduces exactly that structure: per class a
// declared subset, an instance-attribute superset rendered under 1..k noisy
// surface forms, entity coverage, and facts with a controlled error rate.
#ifndef AKB_SYNTH_KB_GEN_H_
#define AKB_SYNTH_KB_GEN_H_

#include <string>
#include <vector>

#include "synth/noise.h"
#include "synth/world.h"

namespace akb::synth {

/// Per-class generation parameters for one KB.
struct KbClassProfile {
  std::string class_name;
  /// First canonical attribute id this KB draws from (selection window
  /// [attr_offset, attr_offset + instance_attributes) of the world class's
  /// attribute inventory). Offsets let two KBs overlap by a controlled
  /// amount.
  size_t attr_offset = 0;
  /// Attributes used on instances (the extractable set).
  size_t instance_attributes = 20;
  /// Attributes in the declared schema (a subset of the instance set).
  size_t declared_attributes = 10;
  /// Fraction of world entities present in this KB.
  double entity_coverage = 0.8;
  /// Probability an (entity, attribute) fact is materialized.
  double fact_coverage = 0.5;
  /// Probability a materialized fact carries a wrong value.
  double error_rate = 0.05;
  /// Probability a location-valued fact reports an ancestor (coarser) value.
  double generalize_rate = 0.2;
  /// Surface-form noise for attribute names in the instance layer.
  double variant_rate = 0.35;
  double misspell_rate = 0.03;
  /// Probability an attribute additionally appears under a token-level
  /// synonym surface ("total budget" as "overall cost"). Synonyms defeat
  /// string normalization; merging them needs schema alignment.
  double synonym_rate = 0.0;
  /// Probability a location-valued attribute gets a *sub-attribute*
  /// companion "<name> country" whose facts report the country-level
  /// ancestor of the same underlying value (the paper's "sub-attributes"
  /// to be identified during fusion, §3).
  double sub_attribute_rate = 0.0;
  /// Max distinct surface forms one attribute appears under in this KB.
  size_t max_surface_variants = 3;
};

struct KbProfile {
  std::string kb_name;
  uint64_t seed = 1;
  std::vector<KbClassProfile> classes;
};

/// One attribute as it exists inside a generated KB.
struct KbAttribute {
  AttributeId canonical = 0;          ///< id in the world class
  bool declared = false;              ///< part of the declared schema
  std::vector<std::string> surfaces;  ///< forms used on instances
};

/// One instance-level fact.
struct KbFact {
  EntityId entity = 0;          ///< world entity id
  size_t attribute_index = 0;   ///< into KbClass::attributes
  std::string surface;          ///< attribute surface form used
  std::string value;
  bool correct = true;          ///< generation ledger (not visible to extractors)
};

struct KbClass {
  std::string name;
  std::vector<KbAttribute> attributes;
  std::vector<EntityId> entities;          ///< world ids present in this KB
  std::vector<std::string> entity_names;   ///< parallel to `entities`
  std::vector<KbFact> facts;

  /// Name of a world entity present in this KB, or "" if absent.
  std::string EntityName(EntityId id) const;

  size_t NumDeclared() const;
};

/// A generated KB.
struct KbSnapshot {
  std::string name;
  std::vector<KbClass> classes;

  const KbClass* FindClass(std::string_view class_name) const;
  size_t TotalEntities() const;
  size_t TotalDeclaredAttributes() const;
  size_t TotalFacts() const;
};

/// Renders a KB snapshot of `world` according to `profile`.
KbSnapshot GenerateKb(const World& world, const KbProfile& profile);

/// The two paper KBs over the PaperDefault world, with per-class declared /
/// instance counts and overlaps chosen so that the ground-truth extractable
/// sets match Table 2 (DBpedia: Book 21->48 ... ; Freebase: Book 5->19 ...;
/// union = "Combine" column).
KbProfile PaperDbpediaProfile();
KbProfile PaperFreebaseProfile();

/// A scale-model KB with the given totals, world-independent: `entities`
/// generic entities across ceil(attributes/200) generic classes carrying
/// `attributes` distinct declared attributes overall. Used for Table 1,
/// where only aggregate statistics matter.
KbSnapshot GenerateProfileKb(const std::string& name, size_t entities,
                             size_t attributes, uint64_t seed);

}  // namespace akb::synth

#endif  // AKB_SYNTH_KB_GEN_H_

// Synthetic "is-a" corpus for taxonomic knowledge extraction.
//
// The paper's related work (§2.1) covers taxonomic extractors — YAGO-style
// Wikipedia linking and Probase-style Web harvesting — and §3.1 plans an
// "enhanced ontology" grown from the open Web. This generator renders the
// world's entity-class memberships (plus a configurable superclass chain)
// as natural-language sentences in the Hearst-pattern family:
//
//   "The Silent Harbor is a film."        (instance is-a category)
//   "films such as The Silent Harbor ..." (category such-as instances)
//   "The Silent Harbor and other films"   (instance and-other category)
//   "A film is a creative work."          (category is-a supercategory)
//
// with distractor prose and a ledger of the encoded edges.
#ifndef AKB_SYNTH_TAXONOMY_GEN_H_
#define AKB_SYNTH_TAXONOMY_GEN_H_

#include <string>
#include <vector>

#include "synth/world.h"

namespace akb::synth {

struct TaxonomyCorpusConfig {
  /// Is-a sentences rendered per entity (across all documents).
  size_t sentences_per_entity = 2;
  /// Distractor sentences per is-a sentence (on average).
  double distractor_rate = 0.5;
  /// Probability an is-a statement is wrong (entity attributed to a
  /// different class).
  double error_rate = 0.03;
  size_t num_documents = 20;
  uint64_t seed = 19;
};

/// One encoded is-a edge (the ledger).
struct IsaFact {
  std::string instance;   ///< surface ("The Silent Harbor" or "film")
  std::string category;   ///< surface ("film", "creative work")
  bool correct = true;
};

struct TaxonomyDocument {
  std::string source;
  std::string text;
  std::vector<IsaFact> facts;
};

/// The category name used for a world class ("Film" -> "film") and the
/// default superclass chain above it ("film" -> "creative work" ->
/// "thing"). Exposed so evaluation can reconstruct the ground truth.
std::string CategoryNameOf(const std::string& class_name);
std::vector<std::string> SuperclassChainOf(const std::string& class_name);

std::vector<TaxonomyDocument> GenerateTaxonomyCorpus(
    const World& world, const TaxonomyCorpusConfig& config);

}  // namespace akb::synth

#endif  // AKB_SYNTH_TAXONOMY_GEN_H_

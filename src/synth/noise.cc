#include "synth/noise.h"

#include <cctype>

#include "common/string_util.h"

namespace akb::synth {

namespace {

std::string JoinWith(const std::vector<std::string>& words,
                     std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i) out += sep;
    out += words[i];
  }
  return out;
}

}  // namespace

std::string Misspell(std::string_view word, Rng* rng) {
  std::string w(word);
  if (w.empty()) return w;
  // Pick an editable (alphanumeric) position.
  size_t pos = rng->Index(w.size());
  int kind = static_cast<int>(rng->Index(4));
  switch (kind) {
    case 0:  // swap with next
      if (pos + 1 < w.size()) {
        std::swap(w[pos], w[pos + 1]);
        break;
      }
      [[fallthrough]];
    case 1:  // drop
      if (w.size() > 1) {
        w.erase(pos, 1);
        break;
      }
      [[fallthrough]];
    case 2:  // duplicate
      w.insert(w.begin() + static_cast<long>(pos), w[pos]);
      break;
    default: {  // replace with a nearby letter
      char repl = static_cast<char>('a' + rng->Index(26));
      if (repl == w[pos]) repl = repl == 'z' ? 'a' : static_cast<char>(repl + 1);
      w[pos] = repl;
      break;
    }
  }
  return w;
}

std::string RenderSurface(std::string_view phrase, SurfaceStyle style,
                          Rng* rng) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  if (words.empty()) return std::string(phrase);
  switch (style) {
    case SurfaceStyle::kPlain:
      return JoinWith(words, " ");
    case SurfaceStyle::kTitle:
      return TitleCase(JoinWith(words, " "));
    case SurfaceStyle::kSnake:
      return JoinWith(words, "_");
    case SurfaceStyle::kCamel: {
      std::string out = words[0];
      for (size_t i = 1; i < words.size(); ++i) {
        std::string w = words[i];
        if (!w.empty()) w[0] = static_cast<char>(
            std::toupper(static_cast<unsigned char>(w[0])));
        out += w;
      }
      return out;
    }
    case SurfaceStyle::kHyphen:
      return JoinWith(words, "-");
    case SurfaceStyle::kOfForm: {
      if (words.size() < 2) return words[0];
      // Front the head noun: "birth place" -> "place of birth".
      std::vector<std::string> rest(words.begin(), words.end() - 1);
      return words.back() + " of " + JoinWith(rest, " ");
    }
    case SurfaceStyle::kMisspelled: {
      size_t which = rng->Index(words.size());
      words[which] = Misspell(words[which], rng);
      return JoinWith(words, " ");
    }
  }
  return JoinWith(words, " ");
}

namespace {
// Token-level synonym map over the attribute vocabulary (names.cc).
const std::pair<const char*, const char*> kSynonyms[] = {
    {"total", "overall"},   {"average", "mean"},
    {"budget", "cost"},     {"annual", "yearly"},
    {"primary", "main"},    {"estimated", "approximate"},
    {"revenue", "income"},  {"length", "duration"},
    {"capacity", "volume"}, {"rating", "score"},
    {"maximum", "peak"},    {"enrollment", "intake"},
    {"author", "writer"},   {"initial", "first"},
    {"former", "previous"}, {"national", "countrywide"},
};

const char* SynonymOf(const std::string& token) {
  for (const auto& [word, synonym] : kSynonyms) {
    if (token == word) return synonym;
  }
  return nullptr;
}
}  // namespace

std::string SynonymSurface(std::string_view phrase) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  bool changed = false;
  for (auto& word : words) {
    if (const char* synonym = SynonymOf(word)) {
      word = synonym;
      changed = true;
    }
  }
  if (!changed) return std::string(phrase);
  return JoinWith(words, " ");
}

bool HasSynonym(std::string_view phrase) {
  return SynonymSurface(phrase) != phrase;
}

SurfaceStyle SampleStyle(double variant_rate, double misspell_rate, Rng* rng) {
  double u = rng->NextDouble();
  if (u < misspell_rate) return SurfaceStyle::kMisspelled;
  if (u < misspell_rate + variant_rate) {
    // One of the non-trivial, non-misspelled variants.
    static const SurfaceStyle kVariants[] = {
        SurfaceStyle::kTitle, SurfaceStyle::kSnake, SurfaceStyle::kCamel,
        SurfaceStyle::kHyphen, SurfaceStyle::kOfForm};
    return kVariants[rng->Index(std::size(kVariants))];
  }
  return SurfaceStyle::kPlain;
}

}  // namespace akb::synth

#include "synth/taxonomy_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace akb::synth {

namespace {

const char* const kDistractors[] = {
    "The announcement drew wide attention.",
    "Experts remain cautiously optimistic about the trend.",
    "No further details were made available.",
    "The report covers the previous fiscal year.",
    "Readers responded with considerable enthusiasm.",
};

// Pluralize naively for the "such as" pattern.
std::string Plural(const std::string& noun) {
  if (noun.empty()) return noun;
  if (EndsWith(noun, "y")) return noun.substr(0, noun.size() - 1) + "ies";
  if (EndsWith(noun, "s")) return noun + "es";
  return noun + "s";
}

}  // namespace

std::string CategoryNameOf(const std::string& class_name) {
  return ToLower(class_name);
}

std::vector<std::string> SuperclassChainOf(const std::string& class_name) {
  std::string category = CategoryNameOf(class_name);
  if (category == "book" || category == "film") {
    return {category, "creative work", "thing"};
  }
  if (category == "country") {
    return {category, "geopolitical region", "place"};
  }
  if (category == "university" || category == "hotel") {
    return {category, "institution", "organization"};
  }
  return {category, "thing"};
}

std::vector<TaxonomyDocument> GenerateTaxonomyCorpus(
    const World& world, const TaxonomyCorpusConfig& config) {
  std::vector<TaxonomyDocument> documents(
      std::max<size_t>(1, config.num_documents));
  Rng rng(config.seed);
  for (size_t d = 0; d < documents.size(); ++d) {
    documents[d].source = "taxo-" + rng.Identifier(5) + ".example.com";
  }

  size_t doc_index = 0;
  auto emit = [&](std::string sentence, IsaFact fact) {
    TaxonomyDocument& doc = documents[doc_index % documents.size()];
    ++doc_index;
    doc.text += sentence + " ";
    doc.facts.push_back(std::move(fact));
    size_t distractors = rng.Poisson(config.distractor_rate);
    for (size_t i = 0; i < distractors; ++i) {
      doc.text += kDistractors[rng.Index(std::size(kDistractors))];
      doc.text += " ";
    }
  };

  // --- Instance-level sentences.
  for (const WorldClass& wc : world.classes()) {
    std::string category = CategoryNameOf(wc.name);
    for (const Entity& entity : wc.entities) {
      for (size_t s = 0; s < config.sentences_per_entity; ++s) {
        std::string used_category = category;
        bool correct = true;
        if (rng.Bernoulli(config.error_rate) && world.classes().size() > 1) {
          const WorldClass& other =
              world.classes()[rng.Index(world.classes().size())];
          if (other.name != wc.name) {
            used_category = CategoryNameOf(other.name);
            correct = false;
          }
        }
        std::string article =
            (!used_category.empty() &&
             std::string("aeiou").find(used_category[0]) != std::string::npos)
                ? "an"
                : "a";
        std::string sentence;
        switch (rng.Index(3)) {
          case 0:
            sentence = entity.name + " is " + article + " " + used_category +
                       ".";
            break;
          case 1:
            sentence = "Critics discussed " + Plural(used_category) +
                       " such as " + entity.name + ".";
            break;
          default:
            sentence = entity.name + " and other " + Plural(used_category) +
                       " were mentioned.";
            break;
        }
        emit(std::move(sentence),
             IsaFact{entity.name, used_category, correct});
      }
    }

    // --- Category-level sentences (the superclass chain).
    auto chain = SuperclassChainOf(wc.name);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      for (int repeat = 0; repeat < 3; ++repeat) {
        std::string article =
            std::string("aeiou").find(chain[i][0]) != std::string::npos
                ? "An"
                : "A";
        emit(article + " " + chain[i] + " is a " + chain[i + 1] + ".",
             IsaFact{chain[i], chain[i + 1], true});
      }
    }
  }
  return documents;
}

}  // namespace akb::synth

// Synthetic Web-text corpus: natural-language articles rendered from world
// facts, the input to the Web-text extractor.
//
// Articles mix factual sentences generated from a family of lexical
// templates ("The budget of The Silent Harbor is 2,100,000.") with
// distractor prose. The ledger records which (entity, attribute, value)
// each factual sentence encodes, enabling exact precision/recall.
#ifndef AKB_SYNTH_TEXT_GEN_H_
#define AKB_SYNTH_TEXT_GEN_H_

#include <string>
#include <vector>

#include "synth/world.h"

namespace akb::synth {

struct TextConfig {
  std::string class_name;
  size_t num_articles = 40;
  /// Factual sentences per article.
  size_t facts_per_article = 8;
  /// Distractor sentences inserted per factual sentence (on average).
  double distractor_rate = 0.6;
  double value_error_rate = 0.05;
  /// Probability the attribute phrase in a sentence is misspelled.
  double attr_misspell_rate = 0.02;
  uint64_t seed = 5;
};

/// Ledger entry for one factual sentence.
struct TextFact {
  EntityId entity = 0;
  AttributeId attribute = 0;
  std::string label;  ///< attribute surface used in the sentence
  std::string value;
  bool value_correct = true;
};

struct TextArticle {
  std::string source;  ///< synthetic source id ("text-ab12.example.com")
  std::string text;
  std::vector<TextFact> facts;
};

/// Generates articles about entities of `config.class_name`.
std::vector<TextArticle> GenerateArticles(const World& world,
                                          const TextConfig& config);

/// Generates only articles [begin, end) of the same deterministic
/// sequence: each article draws from a per-article fork of the master
/// seed, so disjoint ranges concatenated in order reproduce
/// GenerateArticles() byte-for-byte (the shard API for parallel
/// rendering).
std::vector<TextArticle> GenerateArticleRange(const World& world,
                                              const TextConfig& config,
                                              size_t begin, size_t end);

}  // namespace akb::synth

#endif  // AKB_SYNTH_TEXT_GEN_H_

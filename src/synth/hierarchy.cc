#include "synth/hierarchy.h"

#include <algorithm>
#include <cassert>

#include "synth/names.h"

namespace akb::synth {

ValueHierarchy::ValueHierarchy() {
  names_.push_back("(root)");
  parents_.push_back(kHierarchyRoot);
  children_.emplace_back();
  depths_.push_back(0);
}

HierarchyNodeId ValueHierarchy::AddChild(HierarchyNodeId parent,
                                         std::string name) {
  assert(parent < names_.size());
  HierarchyNodeId id = static_cast<HierarchyNodeId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  parents_.push_back(parent);
  children_.emplace_back();
  depths_.push_back(depths_[parent] + 1);
  children_[parent].push_back(id);
  return id;
}

HierarchyNodeId ValueHierarchy::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoHierarchyNode : it->second;
}

bool ValueHierarchy::IsAncestorOrSelf(HierarchyNodeId ancestor,
                                      HierarchyNodeId node) const {
  HierarchyNodeId n = node;
  while (true) {
    if (n == ancestor) return true;
    if (n == kHierarchyRoot) return false;
    n = parents_[n];
  }
}

std::vector<HierarchyNodeId> ValueHierarchy::RootChain(
    HierarchyNodeId node) const {
  std::vector<HierarchyNodeId> chain;
  for (HierarchyNodeId n = node; n != kHierarchyRoot; n = parents_[n]) {
    chain.push_back(n);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<HierarchyNodeId> ValueHierarchy::Leaves() const {
  std::vector<HierarchyNodeId> leaves;
  for (HierarchyNodeId id = 1; id < names_.size(); ++id) {
    if (children_[id].empty()) leaves.push_back(id);
  }
  return leaves;
}

HierarchyNodeId ValueHierarchy::Lca(HierarchyNodeId a,
                                    HierarchyNodeId b) const {
  while (depths_[a] > depths_[b]) a = parents_[a];
  while (depths_[b] > depths_[a]) b = parents_[b];
  while (a != b) {
    a = parents_[a];
    b = parents_[b];
  }
  return a;
}

ValueHierarchy BuildLocationHierarchy(size_t countries,
                                      size_t regions_per_country,
                                      size_t cities_per_region,
                                      uint64_t seed) {
  ValueHierarchy h;
  PlaceNameGenerator names{Rng(seed)};
  for (size_t c = 0; c < countries; ++c) {
    HierarchyNodeId country = h.AddChild(kHierarchyRoot, names.Next());
    for (size_t r = 0; r < regions_per_country; ++r) {
      HierarchyNodeId region = h.AddChild(country, names.Next());
      for (size_t k = 0; k < cities_per_region; ++k) {
        h.AddChild(region, names.Next());
      }
    }
  }
  return h;
}

}  // namespace akb::synth

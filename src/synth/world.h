// The synthetic world: the ground truth every generator renders and every
// extractor/fusion experiment is evaluated against.
//
// A World holds a set of classes (the paper evaluates on Book, Film,
// Country, University, Hotel), each with a canonical attribute inventory and
// a set of entities carrying true attribute values. Web sites, text corpora,
// query logs, and KB snapshots are all *rendered* from this world with
// controlled noise, so extraction precision/recall and fusion accuracy are
// measurable exactly.
#ifndef AKB_SYNTH_WORLD_H_
#define AKB_SYNTH_WORLD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "synth/hierarchy.h"

namespace akb::synth {

using ClassId = uint32_t;
using AttributeId = uint32_t;
using EntityId = uint32_t;

/// What kind of values an attribute takes.
enum class ValueDomainKind : uint8_t {
  kCategorical = 0,  ///< strings drawn from a per-attribute pool
  kNumeric = 1,      ///< integer strings
  kPerson = 2,       ///< person names (author, director, ...)
  kLocation = 3,     ///< leaves of the world's location hierarchy
};

/// How entity names are generated for a class.
enum class EntityNameStyle : uint8_t {
  kTitle = 0,       ///< "The Silent Harbor" (books, films)
  kPlace = 1,       ///< "Varonia" (countries)
  kUniversity = 2,  ///< "University of Varonia"
  kHotel = 3,       ///< "Hotel Varonia"
};

/// One canonical attribute of a class.
struct AttributeSpec {
  std::string name;  ///< canonical phrase, lowercase ("total enrollment")
  bool functional = true;
  ValueDomainKind domain = ValueDomainKind::kCategorical;
  /// Candidate values for kCategorical/kNumeric/kPerson; wrong values in
  /// noisy renderings are drawn from this same pool.
  std::vector<std::string> value_pool;
};

/// Ground-truth values of one attribute of one entity. Non-functional
/// attributes have several values; location attributes store a leaf
/// hierarchy node (any ancestor of it also counts as true).
struct Fact {
  AttributeId attribute = 0;
  std::vector<std::string> values;
  HierarchyNodeId location = kNoHierarchyNode;
};

struct Entity {
  std::string name;
  std::vector<Fact> facts;  ///< one per attribute, indexed by AttributeId
};

/// One class with its attribute inventory and entities.
struct WorldClass {
  std::string name;
  EntityNameStyle name_style = EntityNameStyle::kTitle;
  std::vector<AttributeSpec> attributes;
  std::vector<Entity> entities;

  /// Canonical attribute id by normalized name, or nullopt.
  std::optional<AttributeId> FindAttribute(std::string_view name) const;

  /// Index from NormalizeSurface(attribute name) to id; built on demand by
  /// World::Build.
  std::unordered_map<std::string, AttributeId> attribute_index;
};

/// Per-class build configuration.
struct ClassConfig {
  std::string name;
  size_t num_attributes = 40;
  size_t num_entities = 50;
  EntityNameStyle name_style = EntityNameStyle::kTitle;
};

struct WorldConfig {
  uint64_t seed = 42;
  std::vector<ClassConfig> classes;

  /// Location hierarchy shape.
  size_t hierarchy_countries = 12;
  size_t hierarchy_regions_per_country = 4;
  size_t hierarchy_cities_per_region = 5;

  /// Fraction of attributes that are non-functional (multi-truth).
  double non_functional_rate = 0.2;
  /// Fraction of attributes whose domain is the location hierarchy.
  double location_attribute_rate = 0.08;
  /// Fraction with person-name values.
  double person_attribute_rate = 0.12;
  /// Fraction with numeric values.
  double numeric_attribute_rate = 0.25;
  /// Values per categorical attribute pool.
  size_t value_pool_size = 24;
  /// Max true values for a non-functional attribute.
  size_t max_multi_values = 3;

  /// The paper's five representative classes with attribute inventories
  /// sized so both the Table 2 "Combine" column and the Table 3 credible-
  /// attribute counts fit inside each class's true attribute set (Book 120,
  /// Film 110, Country 550, University 600, Hotel 300).
  static WorldConfig PaperDefault();

  /// A small world (3 classes, ~12 attributes, ~15 entities each) for unit
  /// tests.
  static WorldConfig Small();
};

/// Immutable after Build().
class World {
 public:
  /// Builds a world deterministically from the config seed.
  static World Build(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const std::vector<WorldClass>& classes() const { return classes_; }
  const WorldClass& cls(ClassId id) const { return classes_[id]; }
  const ValueHierarchy& hierarchy() const { return hierarchy_; }

  /// Class id by (exact) name.
  std::optional<ClassId> FindClass(std::string_view name) const;

  /// True iff `value` (surface form) is a correct value for the attribute of
  /// the entity: an exact normalized match of a true value, or — for
  /// location attributes — any ancestor of the true leaf.
  bool IsTrueValue(ClassId cls, EntityId entity, AttributeId attribute,
                   std::string_view value) const;

  /// True iff the normalized `name` is a canonical attribute of the class.
  bool IsTrueAttribute(ClassId cls, std::string_view name) const;

  /// Total number of ground-truth facts.
  size_t TotalFacts() const;
  /// Total number of entities across classes.
  size_t TotalEntities() const;

 private:
  WorldConfig config_;
  std::vector<WorldClass> classes_;
  ValueHierarchy hierarchy_;
};

}  // namespace akb::synth

#endif  // AKB_SYNTH_WORLD_H_

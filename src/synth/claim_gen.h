// Synthetic claim datasets for knowledge-fusion experiments (§3.2).
//
// Fusion methods consume (data item, source, value) claims. This generator
// produces claim sets with *controlled* source behaviour — per-source
// accuracy and coverage, copier sources that plagiarize a target source,
// multi-truth items, and hierarchical value domains — so each fusion
// technique's claimed advantage is testable in isolation.
#ifndef AKB_SYNTH_CLAIM_GEN_H_
#define AKB_SYNTH_CLAIM_GEN_H_

#include <string>
#include <vector>

#include "synth/hierarchy.h"

namespace akb::synth {

/// Behaviour of one synthetic source.
struct SourceSpec {
  std::string name;
  /// Probability a claim it makes independently is a true value.
  double accuracy = 0.8;
  /// Probability it claims anything about a given item.
  double coverage = 0.7;
  /// Index of the source this one copies, or -1 if independent.
  int copies_from = -1;
  /// When a copier covers an item the target also covers, probability it
  /// copies the target's value instead of claiming independently.
  double copy_rate = 0.85;
  /// For hierarchical items: probability a true claim is reported at a
  /// coarser (ancestor) level.
  double generalize_rate = 0.0;
  /// For multi-truth items: probability each individual true value is
  /// included in the source's (multi-valued) claim set; at least one true
  /// value is always claimed. Real sources list several values for
  /// non-functional attributes (cast lists, spoken languages), which is
  /// what latent-truth-model fusion exploits.
  double truth_claim_rate = 0.8;
};

struct ClaimGenConfig {
  size_t num_items = 400;
  /// Candidate values per (non-hierarchical) item, including the truths.
  size_t domain_size = 10;
  /// Fraction of items with more than one true value.
  double multi_truth_rate = 0.0;
  /// Max true values for a multi-truth item.
  size_t max_truths = 3;
  /// When > 0, items are partitioned round-robin into this many *attribute
  /// groups* (item ids become "attr_<g>|item_<i>"), and truth cardinality
  /// is decided per group instead of per item: the first
  /// `functional_group_rate` fraction of groups is functional (one truth),
  /// the rest multi-truth. This models real schemas, where functionality
  /// is a property of the attribute, not of the individual data item.
  size_t attribute_groups = 0;
  double functional_group_rate = 0.5;
  /// Fraction of items whose domain is the location hierarchy.
  double hierarchical_rate = 0.0;
  std::vector<SourceSpec> sources;
  uint64_t seed = 17;
};

/// A generated fusion workload with known truth.
struct FusionDataset {
  struct Item {
    std::string id;
    std::vector<std::string> truths;   ///< exact true values
    std::vector<std::string> domain;   ///< candidates (truths included)
    bool hierarchical = false;
    HierarchyNodeId truth_leaf = kNoHierarchyNode;
  };
  struct ClaimRecord {
    size_t item = 0;
    size_t source = 0;
    std::string value;
  };

  std::vector<Item> items;
  std::vector<SourceSpec> sources;
  std::vector<ClaimRecord> claims;
  /// The hierarchy backing hierarchical items (non-empty only if used).
  ValueHierarchy hierarchy;

  /// True iff `value` is correct for item `i` (exact truth, or an ancestor
  /// of the true leaf for hierarchical items).
  bool IsTrue(size_t i, const std::string& value) const;
};

/// Generates a dataset; deterministic in config.seed.
FusionDataset GenerateClaims(const ClaimGenConfig& config);

/// Convenience: n independent sources with accuracies evenly spaced in
/// [lo, hi] and the given coverage.
std::vector<SourceSpec> MakeSources(size_t n, double lo, double hi,
                                    double coverage = 0.7);

}  // namespace akb::synth

#endif  // AKB_SYNTH_CLAIM_GEN_H_

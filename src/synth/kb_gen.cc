#include "synth/kb_gen.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/string_util.h"
#include "synth/names.h"

namespace akb::synth {

std::string KbClass::EntityName(EntityId id) const {
  for (size_t i = 0; i < entities.size(); ++i) {
    if (entities[i] == id) return i < entity_names.size() ? entity_names[i] : "";
  }
  return "";
}

size_t KbClass::NumDeclared() const {
  size_t count = 0;
  for (const auto& attribute : attributes) {
    if (attribute.declared) ++count;
  }
  return count;
}

const KbClass* KbSnapshot::FindClass(std::string_view class_name) const {
  for (const auto& c : classes) {
    if (c.name == class_name) return &c;
  }
  return nullptr;
}

size_t KbSnapshot::TotalEntities() const {
  size_t total = 0;
  for (const auto& c : classes) total += c.entities.size();
  return total;
}

size_t KbSnapshot::TotalDeclaredAttributes() const {
  size_t total = 0;
  for (const auto& c : classes) total += c.NumDeclared();
  return total;
}

size_t KbSnapshot::TotalFacts() const {
  size_t total = 0;
  for (const auto& c : classes) total += c.facts.size();
  return total;
}

namespace {

// Picks the value a KB reports for a fact; may be wrong or generalized.
std::string RenderFactValue(const World& world, const WorldClass& wc,
                            const Fact& fact, const KbClassProfile& profile,
                            Rng* rng, bool* correct) {
  const AttributeSpec& spec = wc.attributes[fact.attribute];
  *correct = true;

  if (spec.domain == ValueDomainKind::kLocation &&
      fact.location != kNoHierarchyNode) {
    if (rng->Bernoulli(profile.error_rate)) {
      // Wrong leaf from the hierarchy.
      *correct = false;
      auto leaves = world.hierarchy().Leaves();
      HierarchyNodeId pick = leaves[rng->Index(leaves.size())];
      if (pick == fact.location) *correct = true;  // accidental truth
      return world.hierarchy().name(pick);
    }
    if (rng->Bernoulli(profile.generalize_rate)) {
      // A coarser-but-true ancestor.
      auto chain = world.hierarchy().RootChain(fact.location);
      if (chain.size() > 1) {
        size_t level = rng->Index(chain.size() - 1);
        return world.hierarchy().name(chain[level]);
      }
    }
    return world.hierarchy().name(fact.location);
  }

  if (!fact.values.empty() && !rng->Bernoulli(profile.error_rate)) {
    return fact.values[rng->Index(fact.values.size())];
  }
  // Wrong value from the attribute's pool (or a corrupted true value when
  // the pool is trivially small).
  *correct = false;
  if (spec.value_pool.size() > 1) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::string& candidate =
          spec.value_pool[rng->Index(spec.value_pool.size())];
      bool is_true = std::find(fact.values.begin(), fact.values.end(),
                               candidate) != fact.values.end();
      if (!is_true) return candidate;
    }
  }
  if (!fact.values.empty()) return Misspell(fact.values.front(), rng);
  return "unknown";
}

}  // namespace

KbSnapshot GenerateKb(const World& world, const KbProfile& profile) {
  KbSnapshot snapshot;
  snapshot.name = profile.kb_name;
  Rng master(profile.seed);

  for (const KbClassProfile& cp : profile.classes) {
    auto cls_id = world.FindClass(cp.class_name);
    if (!cls_id) {
      AKB_LOG(Warning) << "KB profile references unknown class '"
                       << cp.class_name << "'";
      continue;
    }
    const WorldClass& wc = world.cls(*cls_id);
    Rng rng = master.Fork();

    KbClass out;
    out.name = cp.class_name;

    // --- Attribute selection window.
    size_t begin = std::min(cp.attr_offset, wc.attributes.size());
    size_t end = std::min(begin + cp.instance_attributes, wc.attributes.size());
    if (end - begin < cp.instance_attributes) {
      AKB_LOG(Warning) << "class '" << cp.class_name << "' has only "
                       << wc.attributes.size()
                       << " attributes; instance window truncated to "
                       << (end - begin);
    }
    // The declared schema is the window prefix (which canonical ids land
    // there is arbitrary since attribute order is already shuffled).
    for (size_t i = begin; i < end; ++i) {
      KbAttribute attribute;
      attribute.canonical = static_cast<AttributeId>(i);
      attribute.declared = (i - begin) < cp.declared_attributes;
      if (cp.synonym_rate > 0 && rng.Bernoulli(cp.synonym_rate) &&
          HasSynonym(wc.attributes[i].name)) {
        attribute.surfaces.push_back(
            SynonymSurface(wc.attributes[i].name));
      }
      size_t num_surfaces =
          1 + rng.Index(std::max<size_t>(1, cp.max_surface_variants));
      for (size_t v = 0; v < num_surfaces; ++v) {
        SurfaceStyle style =
            v == 0 ? SurfaceStyle::kPlain
                   : SampleStyle(cp.variant_rate * 2.5, cp.misspell_rate * 2.5,
                                 &rng);
        std::string surface =
            RenderSurface(wc.attributes[i].name, style, &rng);
        if (std::find(attribute.surfaces.begin(), attribute.surfaces.end(),
                      surface) == attribute.surfaces.end()) {
          attribute.surfaces.push_back(std::move(surface));
        }
      }
      out.attributes.push_back(std::move(attribute));
    }

    // --- Entity subset.
    size_t num_entities = static_cast<size_t>(
        cp.entity_coverage * static_cast<double>(wc.entities.size()) + 0.5);
    auto picks =
        rng.SampleWithoutReplacement(wc.entities.size(), num_entities);
    std::sort(picks.begin(), picks.end());
    for (size_t p : picks) {
      out.entities.push_back(static_cast<EntityId>(p));
      out.entity_names.push_back(wc.entities[p].name);
    }

    // Sub-attribute companions: a coarse "<name> country" attribute per
    // selected location attribute, reporting the country ancestor.
    std::vector<size_t> sub_of;  // parallel to out.attributes; SIZE_MAX=none
    sub_of.assign(out.attributes.size(), SIZE_MAX);
    if (cp.sub_attribute_rate > 0) {
      size_t original = out.attributes.size();
      for (size_t ai = 0; ai < original; ++ai) {
        const AttributeSpec& spec =
            wc.attributes[out.attributes[ai].canonical];
        if (spec.domain != ValueDomainKind::kLocation) continue;
        if (!rng.Bernoulli(cp.sub_attribute_rate)) continue;
        KbAttribute companion;
        companion.canonical = out.attributes[ai].canonical;
        companion.declared = false;
        companion.surfaces = {spec.name + " country"};
        sub_of.push_back(ai);
        out.attributes.push_back(std::move(companion));
      }
    }

    // --- Instance facts.
    for (EntityId e : out.entities) {
      const Entity& entity = wc.entities[e];
      for (size_t ai = 0; ai < out.attributes.size(); ++ai) {
        if (!rng.Bernoulli(cp.fact_coverage)) continue;
        const KbAttribute& attribute = out.attributes[ai];
        const Fact& fact = entity.facts[attribute.canonical];
        KbFact kb_fact;
        kb_fact.entity = e;
        kb_fact.attribute_index = ai;
        kb_fact.surface =
            attribute.surfaces[rng.Index(attribute.surfaces.size())];
        if (ai < sub_of.size() && sub_of[ai] != SIZE_MAX &&
            fact.location != kNoHierarchyNode) {
          // Companion fact: the country-level (top) ancestor.
          auto chain = world.hierarchy().RootChain(fact.location);
          kb_fact.value = world.hierarchy().name(chain.front());
          kb_fact.correct = true;
        } else {
          kb_fact.value =
              RenderFactValue(world, wc, fact, cp, &rng, &kb_fact.correct);
        }
        out.facts.push_back(std::move(kb_fact));
      }
    }
    snapshot.classes.push_back(std::move(out));
  }
  return snapshot;
}

namespace {

KbClassProfile MakeClassProfile(const std::string& name, size_t offset,
                                size_t instance, size_t declared) {
  KbClassProfile profile;
  profile.class_name = name;
  profile.attr_offset = offset;
  profile.instance_attributes = instance;
  profile.declared_attributes = declared;
  return profile;
}

}  // namespace

KbProfile PaperDbpediaProfile() {
  // "Extrac.(DBpedia)" (instance) and "DBpedia" (declared) columns of
  // Table 2. Window offset 0: DBpedia takes the head of each class's
  // attribute inventory.
  KbProfile profile;
  profile.kb_name = "DBpediaSynth";
  profile.seed = 101;
  profile.classes = {
      MakeClassProfile("Book", 0, 48, 21),
      MakeClassProfile("Film", 0, 53, 53),
      MakeClassProfile("Country", 0, 360, 191),
      MakeClassProfile("University", 0, 484, 21),
      MakeClassProfile("Hotel", 0, 216, 18),
  };
  return profile;
}

KbProfile PaperFreebaseProfile() {
  // Offsets are union - instance so that |DBpedia ∪ Freebase| equals the
  // "Combine" column (Book 60, Film 92, Country 489, University 518,
  // Hotel 255).
  KbProfile profile;
  profile.kb_name = "FreebaseSynth";
  profile.seed = 202;
  profile.classes = {
      MakeClassProfile("Book", 60 - 19, 19, 5),
      MakeClassProfile("Film", 92 - 54, 54, 54),
      MakeClassProfile("Country", 489 - 150, 150, 22),
      MakeClassProfile("University", 518 - 57, 57, 9),
      MakeClassProfile("Hotel", 255 - 56, 56, 7),
  };
  // Freebase-style: broader entity coverage, sparser per-entity facts.
  for (auto& c : profile.classes) {
    c.entity_coverage = 0.9;
    c.fact_coverage = 0.4;
  }
  return profile;
}

KbSnapshot GenerateProfileKb(const std::string& name, size_t entities,
                             size_t attributes, uint64_t seed) {
  KbSnapshot snapshot;
  snapshot.name = name;
  Rng rng(seed);
  constexpr size_t kMaxAttrsPerClass = 200;
  size_t num_classes =
      std::max<size_t>(1, (attributes + kMaxAttrsPerClass - 1) /
                              kMaxAttrsPerClass);
  size_t attrs_left = attributes;
  size_t entities_left = entities;
  for (size_t c = 0; c < num_classes; ++c) {
    KbClass cls;
    cls.name = "class_" + std::to_string(c);
    size_t attrs_here =
        std::min(attrs_left, (attributes + num_classes - 1) / num_classes);
    size_t entities_here = c + 1 == num_classes
                               ? entities_left
                               : entities / num_classes;
    attrs_left -= attrs_here;
    entities_left -= entities_here;
    AttributePhraseGenerator phrases{rng.Fork()};
    for (const std::string& phrase : phrases.Generate(attrs_here)) {
      KbAttribute attribute;
      attribute.canonical = static_cast<AttributeId>(cls.attributes.size());
      attribute.declared = true;
      attribute.surfaces = {phrase};
      cls.attributes.push_back(std::move(attribute));
    }
    for (size_t e = 0; e < entities_here; ++e) {
      cls.entities.push_back(static_cast<EntityId>(e));
    }
    snapshot.classes.push_back(std::move(cls));
  }
  return snapshot;
}

}  // namespace akb::synth

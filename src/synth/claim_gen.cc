#include "synth/claim_gen.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace akb::synth {

bool FusionDataset::IsTrue(size_t i, const std::string& value) const {
  const Item& item = items[i];
  for (const std::string& t : item.truths) {
    if (t == value) return true;
  }
  if (item.hierarchical && item.truth_leaf != kNoHierarchyNode) {
    HierarchyNodeId node = hierarchy.Find(value);
    if (node != kNoHierarchyNode &&
        hierarchy.IsAncestorOrSelf(node, item.truth_leaf)) {
      return true;
    }
  }
  return false;
}

std::vector<SourceSpec> MakeSources(size_t n, double lo, double hi,
                                    double coverage) {
  std::vector<SourceSpec> sources;
  for (size_t i = 0; i < n; ++i) {
    SourceSpec spec;
    spec.name = "source_" + std::to_string(i);
    spec.accuracy =
        n <= 1 ? lo : lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(n - 1);
    spec.coverage = coverage;
    sources.push_back(std::move(spec));
  }
  return sources;
}

FusionDataset GenerateClaims(const ClaimGenConfig& config) {
  FusionDataset dataset;
  dataset.sources = config.sources;
  Rng rng(config.seed);

  bool uses_hierarchy = config.hierarchical_rate > 0.0;
  if (uses_hierarchy) {
    dataset.hierarchy = BuildLocationHierarchy(8, 3, 4, rng.NextU64());
  }
  std::vector<HierarchyNodeId> leaves =
      uses_hierarchy ? dataset.hierarchy.Leaves()
                     : std::vector<HierarchyNodeId>{};

  // --- Items.
  for (size_t i = 0; i < config.num_items; ++i) {
    FusionDataset::Item item;
    bool group_multi_truth = false;
    bool has_group = config.attribute_groups > 0;
    if (has_group) {
      size_t group = i % config.attribute_groups;
      size_t functional_groups = static_cast<size_t>(
          config.functional_group_rate *
          static_cast<double>(config.attribute_groups));
      group_multi_truth = group >= functional_groups;
      item.id = "attr_" + std::to_string(group) + "|item_" +
                std::to_string(i);
    } else {
      item.id = "item_" + std::to_string(i);
    }
    if (uses_hierarchy && rng.Bernoulli(config.hierarchical_rate) &&
        !leaves.empty()) {
      item.hierarchical = true;
      item.truth_leaf = leaves[rng.Index(leaves.size())];
      item.truths.push_back(dataset.hierarchy.name(item.truth_leaf));
      // Domain = all hierarchy values (sources may claim any level).
      for (HierarchyNodeId n = 1; n < dataset.hierarchy.size(); ++n) {
        item.domain.push_back(dataset.hierarchy.name(n));
      }
    } else {
      size_t num_truths = 1;
      bool multi = has_group ? group_multi_truth
                             : rng.Bernoulli(config.multi_truth_rate);
      if (multi) {
        num_truths =
            2 + rng.Index(std::max<size_t>(1, config.max_truths - 1));
      }
      size_t domain = std::max(config.domain_size, num_truths + 1);
      for (size_t v = 0; v < domain; ++v) {
        std::string value = "v";
        value += std::to_string(v);
        value += "_";
        value += std::to_string(i);
        item.domain.push_back(std::move(value));
      }
      auto picks = rng.SampleWithoutReplacement(domain, num_truths);
      for (size_t p : picks) item.truths.push_back(item.domain[p]);
    }
    dataset.items.push_back(std::move(item));
  }

  // --- Claims. Copiers need the target's claims first, so generate in
  // dependency order (independents first; single-level copying only).
  std::vector<size_t> order;
  for (size_t s = 0; s < dataset.sources.size(); ++s) {
    if (dataset.sources[s].copies_from < 0) order.push_back(s);
  }
  for (size_t s = 0; s < dataset.sources.size(); ++s) {
    if (dataset.sources[s].copies_from >= 0) order.push_back(s);
  }

  // item -> source -> claimed value set (for copy lookups).
  std::vector<std::unordered_map<size_t, std::vector<std::string>>> claimed(
      config.num_items);

  for (size_t s : order) {
    const SourceSpec& spec = dataset.sources[s];
    Rng source_rng = rng.Fork();
    for (size_t i = 0; i < config.num_items; ++i) {
      if (!source_rng.Bernoulli(spec.coverage)) continue;
      const FusionDataset::Item& item = dataset.items[i];

      std::vector<std::string> values;
      bool copied = false;
      if (spec.copies_from >= 0) {
        auto it = claimed[i].find(static_cast<size_t>(spec.copies_from));
        if (it != claimed[i].end() && source_rng.Bernoulli(spec.copy_rate)) {
          values = it->second;
          copied = true;
        }
      }
      if (!copied) {
        if (source_rng.Bernoulli(spec.accuracy)) {
          // True claim(s). Multi-truth items yield a multi-valued claim
          // set: each truth independently with truth_claim_rate, at least
          // one always.
          for (const std::string& truth : item.truths) {
            if (source_rng.Bernoulli(spec.truth_claim_rate)) {
              values.push_back(truth);
            }
          }
          if (values.empty()) {
            values.push_back(
                item.truths[source_rng.Index(item.truths.size())]);
          }
          if (item.hierarchical && values.size() == 1 &&
              source_rng.Bernoulli(spec.generalize_rate)) {
            auto chain = dataset.hierarchy.RootChain(item.truth_leaf);
            if (chain.size() > 1) {
              values[0] = dataset.hierarchy.name(
                  chain[source_rng.Index(chain.size() - 1)]);
            }
          }
        } else {
          // False claim from the domain.
          std::string value;
          for (int attempt = 0; attempt < 16; ++attempt) {
            const std::string& candidate =
                item.domain[source_rng.Index(item.domain.size())];
            bool is_true =
                std::find(item.truths.begin(), item.truths.end(),
                          candidate) != item.truths.end();
            // For hierarchical items ancestors of the truth are also true;
            // reject them as "false" picks.
            if (item.hierarchical) {
              HierarchyNodeId node = dataset.hierarchy.Find(candidate);
              if (node != kNoHierarchyNode &&
                  dataset.hierarchy.IsAncestorOrSelf(node, item.truth_leaf)) {
                is_true = true;
              }
            }
            if (!is_true) {
              value = candidate;
              break;
            }
          }
          if (value.empty()) value = item.domain.front();
          values.push_back(std::move(value));
        }
      }
      claimed[i][s] = values;
      for (const std::string& value : values) {
        dataset.claims.push_back(FusionDataset::ClaimRecord{i, s, value});
      }
    }
  }
  return dataset;
}

}  // namespace akb::synth

#include "synth/site_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "html/entities.h"
#include "synth/noise.h"

namespace akb::synth {

namespace {

const char* const kJunkWords[] = {
    "home",    "contact", "about",   "login",   "register", "subscribe",
    "special", "offer",   "deals",   "today",   "trending", "popular",
    "latest",  "archive", "sitemap", "privacy", "terms",    "careers"};

std::string JunkPhrase(Rng* rng, size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i) out += " ";
    out += kJunkWords[rng->Index(std::size(kJunkWords))];
  }
  return out;
}

std::string Esc(const std::string& s) { return html::EncodeEntities(s); }

// Renders one attribute row in the site's layout. `styled` wraps the label
// in a presentational tag (per-row styling jitter real pages exhibit).
void AppendRow(LayoutStyle style, const std::string& label,
               const std::string& value, bool styled, std::string* out) {
  std::string rendered_label =
      styled ? "<b>" + Esc(label) + "</b>" : Esc(label);
  switch (style) {
    case LayoutStyle::kInfoboxTable:
      *out += "<tr><th>" + rendered_label +
              "</th><td><span class=\"val\">" + Esc(value) +
              "</span></td></tr>";
      break;
    case LayoutStyle::kDefinitionList:
      *out += "<dt>" + rendered_label + "</dt><dd><span>" + Esc(value) +
              "</span></dd>";
      break;
    case LayoutStyle::kListItems:
      *out += "<li><span class=\"key\">" + rendered_label +
              "</span><em>" + Esc(value) + "</em></li>";
      break;
    case LayoutStyle::kDivRows:
      *out += "<div class=\"row\"><div class=\"k\">" + rendered_label +
              "</div><div class=\"v\">" + Esc(value) + "</div></div>";
      break;
  }
}

void OpenBlock(LayoutStyle style, std::string* out) {
  switch (style) {
    case LayoutStyle::kInfoboxTable:
      *out += "<table class=\"infobox\">";
      break;
    case LayoutStyle::kDefinitionList:
      *out += "<dl class=\"facts\">";
      break;
    case LayoutStyle::kListItems:
      *out += "<ul class=\"facts\">";
      break;
    case LayoutStyle::kDivRows:
      *out += "<div class=\"props\">";
      break;
  }
}

void CloseBlock(LayoutStyle style, std::string* out) {
  switch (style) {
    case LayoutStyle::kInfoboxTable:
      *out += "</table>";
      break;
    case LayoutStyle::kDefinitionList:
      *out += "</dl>";
      break;
    case LayoutStyle::kListItems:
      *out += "</ul>";
      break;
    case LayoutStyle::kDivRows:
      *out += "</div>";
      break;
  }
}

// Picks the value a page displays for a fact (same noise semantics as the
// KB generator, but independent draws: sites are independent sources).
std::string RenderValue(const World& world, const WorldClass& wc,
                        const Fact& fact, const SiteConfig& config, Rng* rng,
                        bool* correct) {
  const AttributeSpec& spec = wc.attributes[fact.attribute];
  *correct = true;
  if (spec.domain == ValueDomainKind::kLocation &&
      fact.location != kNoHierarchyNode) {
    if (rng->Bernoulli(config.value_error_rate)) {
      auto leaves = world.hierarchy().Leaves();
      HierarchyNodeId pick = leaves[rng->Index(leaves.size())];
      *correct = pick == fact.location;
      return world.hierarchy().name(pick);
    }
    if (rng->Bernoulli(config.generalize_rate)) {
      auto chain = world.hierarchy().RootChain(fact.location);
      if (chain.size() > 1) {
        return world.hierarchy().name(chain[rng->Index(chain.size() - 1)]);
      }
    }
    return world.hierarchy().name(fact.location);
  }
  if (!fact.values.empty() && !rng->Bernoulli(config.value_error_rate)) {
    return fact.values[rng->Index(fact.values.size())];
  }
  *correct = false;
  if (spec.value_pool.size() > 1) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::string& candidate =
          spec.value_pool[rng->Index(spec.value_pool.size())];
      if (std::find(fact.values.begin(), fact.values.end(), candidate) ==
          fact.values.end()) {
        return candidate;
      }
    }
  }
  if (!fact.values.empty()) return Misspell(fact.values.front(), rng);
  return "unknown";
}

// Renders one complete site from its forked RNG. All randomness comes from
// `rng`, so a site's content depends only on its fork — the property the
// range API below relies on.
WebSite GenerateOneSite(const World& world, const WorldClass& wc,
                        const SiteConfig& config, Rng rng) {
  WebSite site;
  site.class_name = config.class_name;
  site.style = config.forced_style >= 0 &&
                       config.forced_style < kNumLayoutStyles
                   ? static_cast<LayoutStyle>(config.forced_style)
                   : static_cast<LayoutStyle>(rng.Index(kNumLayoutStyles));
  site.domain = ToLower(config.class_name) + "-" + rng.Identifier(6) +
                ".example.com";
  // Site-specific wrapper class names: inter-site heterogeneity.
  std::string shell_class = "shell-" + rng.Identifier(4);
  std::string main_class = "main-" + rng.Identifier(4);
  // Boilerplate is fixed per site (real sites render the same nav and
  // footer on every page); ads remain random per page.
  std::vector<std::string> nav_words;
  for (size_t i = 0; i < 4; ++i) nav_words.push_back(JunkPhrase(&rng, 1));
  std::string footer_phrase = JunkPhrase(&rng, 3);

  for (size_t p = 0; p < config.pages_per_site; ++p) {
    EntityId entity_id = static_cast<EntityId>(rng.Index(wc.entities.size()));
    const Entity& entity = wc.entities[entity_id];

    WebPage page;
    page.entity = entity_id;
    page.entity_name = entity.name;
    page.url = "http://" + site.domain + "/page" + std::to_string(p) +
               ".html";

    // Sample the attributes this page renders.
    size_t want = std::max<size_t>(
        1, static_cast<size_t>(config.attribute_coverage *
                               static_cast<double>(wc.attributes.size())));
    auto attr_picks =
        rng.SampleWithoutReplacement(wc.attributes.size(), want);
    std::sort(attr_picks.begin(), attr_picks.end());

    std::string& h = page.html;
    h += "<!DOCTYPE html><html><head><title>" + Esc(entity.name) +
         "</title></head><body>";
    h += "<div class=\"" + shell_class + "\">";

    // Nav boilerplate (identical on every page of the site).
    size_t noise_blocks = rng.Poisson(config.mean_noise_blocks);
    h += "<ul class=\"nav\">";
    for (const std::string& word : nav_words) {
      h += "<li><a href=\"#\">" + word + "</a></li>";
    }
    h += "</ul>";

    h += "<div class=\"" + main_class + "\">";
    h += "<h1>" + Esc(entity.name) + "</h1>";

    for (size_t i = 0; i < noise_blocks; ++i) {
      h += "<div class=\"ad ad-" + rng.Identifier(3) + "\"><p>" +
           JunkPhrase(&rng, 2 + rng.Index(4)) + "</p></div>";
    }

    // Per-page wrapper jitter around the attribute block.
    size_t wrappers = rng.Index(config.max_page_wrappers + 1);
    for (size_t w = 0; w < wrappers; ++w) {
      h += "<div class=\"wrap-" + rng.Identifier(3) + "\">";
    }
    OpenBlock(site.style, &h);
    for (size_t pick : attr_picks) {
      const AttributeSpec& spec = wc.attributes[pick];
      const Fact& fact = entity.facts[pick];
      SurfaceStyle label_style = SampleStyle(config.label_variant_rate,
                                             config.label_misspell_rate,
                                             &rng);
      RenderedPair pair;
      pair.attribute = static_cast<AttributeId>(pick);
      pair.label = RenderSurface(spec.name, label_style, &rng);
      pair.value =
          RenderValue(world, wc, fact, config, &rng, &pair.value_correct);
      AppendRow(site.style, pair.label, pair.value,
                rng.Bernoulli(config.label_style_rate), &h);
      page.pairs.push_back(std::move(pair));
    }
    CloseBlock(site.style, &h);
    for (size_t w = 0; w < wrappers; ++w) h += "</div>";

    // Footer boilerplate.
    h += "<div class=\"footer\"><p>" + footer_phrase + "</p></div>";
    h += "</div></div></body></html>";

    site.pages.push_back(std::move(page));
  }
  return site;
}

}  // namespace

std::vector<WebSite> GenerateSiteRange(const World& world,
                                       const SiteConfig& config,
                                       size_t begin, size_t end) {
  std::vector<WebSite> sites;
  end = std::min(end, config.num_sites);
  if (begin >= end) return sites;
  auto cls_id = world.FindClass(config.class_name);
  if (!cls_id) {
    AKB_LOG(Warning) << "GenerateSiteRange: unknown class '"
                     << config.class_name << "'";
    return sites;
  }
  const WorldClass& wc = world.cls(*cls_id);
  if (wc.entities.empty() || wc.attributes.empty()) return sites;

  // Fork the master once per site index from zero: site s gets the same
  // fork regardless of which range generates it, so disjoint ranges
  // concatenated in order equal a full GenerateSites() run byte-for-byte.
  Rng master(config.seed);
  sites.reserve(end - begin);
  for (size_t s = 0; s < end; ++s) {
    Rng rng = master.Fork();
    if (s < begin) continue;  // fast-forward: fork only, render nothing
    sites.push_back(GenerateOneSite(world, wc, config, rng));
  }
  return sites;
}

std::vector<WebSite> GenerateSites(const World& world,
                                   const SiteConfig& config) {
  return GenerateSiteRange(world, config, 0, config.num_sites);
}

}  // namespace akb::synth

#include "synth/query_workload.h"

#include <algorithm>
#include <array>
#include <string>

#include "common/random.h"

namespace akb::synth {

namespace {

using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;

enum Shape : size_t {
  kPoint = 0,
  kSubjectScan,
  kSubjectPredicate,
  kPredicateScan,
  kObjectScan,
  kMiss,
  kNumShapes,
};

}  // namespace

std::vector<TriplePattern> GenerateQueryWorkload(
    const rdf::TripleStore& store, const QueryWorkloadConfig& config) {
  std::vector<TriplePattern> out;
  out.reserve(config.num_queries);
  if (store.num_triples() == 0 || config.num_queries == 0) return out;

  std::array<double, kNumShapes> weights = {
      config.point_weight,          config.subject_scan_weight,
      config.subject_predicate_weight, config.predicate_scan_weight,
      config.object_scan_weight,    config.miss_weight,
  };
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) {
    weights.fill(0.0);
    weights[kPoint] = total = 1.0;
  }
  std::array<double, kNumShapes> cdf{};
  double acc = 0.0;
  for (size_t i = 0; i < kNumShapes; ++i) {
    acc += std::max(0.0, weights[i]) / total;
    cdf[i] = acc;
  }
  cdf[kNumShapes - 1] = 1.0;

  Rng rng(config.seed);
  // Zipf rank -> triple: shuffle once so the hot ranks are spread across
  // the store instead of clustering on the earliest insertions.
  std::vector<uint32_t> order(store.num_triples());
  for (size_t i = 0; i < order.size(); ++i) order[i] = uint32_t(i);
  rng.Shuffle(&order);
  ZipfTable zipf(order.size(), std::max(1e-3, config.zipf));

  // Ids strictly above the dictionary range can never match anything.
  const TermId ghost_base = TermId(store.dictionary().size() + 1);

  for (size_t q = 0; q < config.num_queries; ++q) {
    double roll = rng.NextDouble();
    size_t shape = 0;
    while (shape + 1 < kNumShapes && roll >= cdf[shape]) ++shape;

    const Triple& t = store.triple(order[zipf.Sample(&rng)]);
    TriplePattern pattern;
    switch (Shape(shape)) {
      case kPoint:
        pattern = {t.subject, t.predicate, t.object};
        break;
      case kSubjectScan:
        pattern = {t.subject, 0, 0};
        break;
      case kSubjectPredicate:
        pattern = {t.subject, t.predicate, 0};
        break;
      case kPredicateScan:
        pattern = {0, t.predicate, 0};
        break;
      case kObjectScan:
        pattern = {0, 0, t.object};
        break;
      case kMiss: {
        TermId ghost = ghost_base + TermId(rng.Index(1u << 16));
        switch (rng.Index(3)) {
          case 0:
            pattern = {ghost, 0, 0};
            break;
          case 1:
            pattern = {t.subject, ghost, 0};
            break;
          default:
            pattern = {ghost, t.predicate, t.object};
            break;
        }
        break;
      }
      case kNumShapes:
        break;
    }
    out.push_back(pattern);
  }
  return out;
}

std::vector<serve::BgpQuery> GenerateBgpWorkload(
    const rdf::TripleStore& store, const BgpWorkloadConfig& config) {
  std::vector<serve::BgpQuery> out;
  out.reserve(config.num_queries);
  if (store.num_triples() == 0 || config.num_queries == 0) return out;

  const size_t min_patterns = std::max<size_t>(2, config.min_patterns);
  const size_t max_patterns = std::min<size_t>(
      serve::kMaxBgpPatterns, std::max(min_patterns, config.max_patterns));

  Rng rng(config.seed);
  // Same Zipf-over-shuffled-triples scheme as GenerateQueryWorkload, so
  // hot subjects repeat and the join cache sees re-asked queries.
  std::vector<uint32_t> order(store.num_triples());
  for (size_t i = 0; i < order.size(); ++i) order[i] = uint32_t(i);
  rng.Shuffle(&order);
  ZipfTable zipf(order.size(), std::max(1e-3, config.zipf));

  // Star over one entity variable: selective bound-object arms built from
  // the subject's actual triples, usually ending in an open "?v" tail.
  auto add_star = [&](serve::BgpQuery* q, const rdf::Triple& base) {
    serve::BgpTerm e = q->Var("e");
    std::vector<size_t> arms = store.Match({base.subject, 0, 0});
    size_t want = min_patterns + rng.Index(max_patterns - min_patterns + 1);
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(arms.size(), want);
    if (picks.size() < 2) {
      // A single-fact subject still yields a 2-pattern join: the bound
      // fact plus its open-tail form.
      const rdf::Triple& t = store.triple(arms[picks.empty() ? 0 : picks[0]]);
      q->Add(e, serve::BgpQuery::Bound(t.predicate),
             serve::BgpQuery::Bound(t.object));
      q->Add(e, serve::BgpQuery::Bound(t.predicate), q->Var("v0"));
      return;
    }
    for (size_t i = 0; i < picks.size(); ++i) {
      const rdf::Triple& t = store.triple(arms[picks[i]]);
      const bool open = i + 1 == picks.size()
                            ? rng.Bernoulli(config.open_tail_weight)
                            : rng.Bernoulli(0.15);
      if (open) {
        q->Add(e, serve::BgpQuery::Bound(t.predicate),
               q->Var("v" + std::to_string(i)));
      } else {
        q->Add(e, serve::BgpQuery::Bound(t.predicate),
               serve::BgpQuery::Bound(t.object));
      }
    }
  };

  for (size_t n = 0; n < config.num_queries; ++n) {
    const rdf::Triple& base = store.triple(order[zipf.Sample(&rng)]);
    serve::BgpQuery q;
    bool built = false;
    if (rng.Bernoulli(config.chain_weight)) {
      // Two-hop path ?a -p-> ?b -p2-> (o2|?v), when the object id links
      // onward as a subject.
      std::vector<size_t> hops = store.Match({base.object, 0, 0});
      if (!hops.empty()) {
        const rdf::Triple& hop = store.triple(hops[rng.Index(hops.size())]);
        serve::BgpTerm a = q.Var("a");
        serve::BgpTerm b = q.Var("b");
        q.Add(a, serve::BgpQuery::Bound(base.predicate), b);
        if (rng.Bernoulli(0.5)) {
          q.Add(b, serve::BgpQuery::Bound(hop.predicate),
                serve::BgpQuery::Bound(hop.object));
        } else {
          q.Add(b, serve::BgpQuery::Bound(hop.predicate), q.Var("v"));
        }
        built = true;
      }
    }
    if (!built) add_star(&q, base);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace akb::synth

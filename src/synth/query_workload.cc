#include "synth/query_workload.h"

#include <algorithm>
#include <array>

#include "common/random.h"

namespace akb::synth {

namespace {

using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;

enum Shape : size_t {
  kPoint = 0,
  kSubjectScan,
  kSubjectPredicate,
  kPredicateScan,
  kObjectScan,
  kMiss,
  kNumShapes,
};

}  // namespace

std::vector<TriplePattern> GenerateQueryWorkload(
    const rdf::TripleStore& store, const QueryWorkloadConfig& config) {
  std::vector<TriplePattern> out;
  out.reserve(config.num_queries);
  if (store.num_triples() == 0 || config.num_queries == 0) return out;

  std::array<double, kNumShapes> weights = {
      config.point_weight,          config.subject_scan_weight,
      config.subject_predicate_weight, config.predicate_scan_weight,
      config.object_scan_weight,    config.miss_weight,
  };
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) {
    weights.fill(0.0);
    weights[kPoint] = total = 1.0;
  }
  std::array<double, kNumShapes> cdf{};
  double acc = 0.0;
  for (size_t i = 0; i < kNumShapes; ++i) {
    acc += std::max(0.0, weights[i]) / total;
    cdf[i] = acc;
  }
  cdf[kNumShapes - 1] = 1.0;

  Rng rng(config.seed);
  // Zipf rank -> triple: shuffle once so the hot ranks are spread across
  // the store instead of clustering on the earliest insertions.
  std::vector<uint32_t> order(store.num_triples());
  for (size_t i = 0; i < order.size(); ++i) order[i] = uint32_t(i);
  rng.Shuffle(&order);
  ZipfTable zipf(order.size(), std::max(1e-3, config.zipf));

  // Ids strictly above the dictionary range can never match anything.
  const TermId ghost_base = TermId(store.dictionary().size() + 1);

  for (size_t q = 0; q < config.num_queries; ++q) {
    double roll = rng.NextDouble();
    size_t shape = 0;
    while (shape + 1 < kNumShapes && roll >= cdf[shape]) ++shape;

    const Triple& t = store.triple(order[zipf.Sample(&rng)]);
    TriplePattern pattern;
    switch (Shape(shape)) {
      case kPoint:
        pattern = {t.subject, t.predicate, t.object};
        break;
      case kSubjectScan:
        pattern = {t.subject, 0, 0};
        break;
      case kSubjectPredicate:
        pattern = {t.subject, t.predicate, 0};
        break;
      case kPredicateScan:
        pattern = {0, t.predicate, 0};
        break;
      case kObjectScan:
        pattern = {0, 0, t.object};
        break;
      case kMiss: {
        TermId ghost = ghost_base + TermId(rng.Index(1u << 16));
        switch (rng.Index(3)) {
          case 0:
            pattern = {ghost, 0, 0};
            break;
          case 1:
            pattern = {t.subject, ghost, 0};
            break;
          default:
            pattern = {ghost, t.predicate, t.object};
            break;
        }
        break;
      }
      case kNumShapes:
        break;
    }
    out.push_back(pattern);
  }
  return out;
}

}  // namespace akb::synth

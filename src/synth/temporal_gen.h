// Synthetic corpus for temporal knowledge extraction.
//
// The paper's related work (§2.1) closes with "Temporal Knowledge
// Extractors [that] identify the facts on given relations at different time
// points ... the solutions are more complex [because] the valid time points
// of facts" must be extracted too. This generator builds per-entity value
// *timelines* for a time-varying attribute (a country's leader, a
// university's president) and renders them as dated sentences:
//
//   "In 2007, the president of Varonia was Elena Marsh."
//   "Elena Marsh became the president of Varonia in 2004."
//
// The ledger keeps the full timeline, so interval reconstruction is
// evaluable exactly.
#ifndef AKB_SYNTH_TEMPORAL_GEN_H_
#define AKB_SYNTH_TEMPORAL_GEN_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace akb::synth {

struct TemporalConfig {
  size_t num_entities = 20;
  /// Inclusive year range of the timelines.
  int first_year = 2000;
  int last_year = 2015;
  /// Mean tenure (years a value stays valid before changing).
  double mean_tenure = 4.0;
  /// The time-varying attribute's surface name.
  std::string attribute = "president";
  /// Dated sentences rendered per entity-year (coverage; 1.0 = every year
  /// mentioned once).
  double mention_rate = 0.8;
  /// Probability a dated sentence reports a wrong holder.
  double error_rate = 0.05;
  size_t num_documents = 10;
  uint64_t seed = 23;
};

/// One tenure on an entity's timeline: `holder` is valid in
/// [start_year, end_year] inclusive.
struct Tenure {
  std::string holder;
  int start_year = 0;
  int end_year = 0;
};

struct TemporalWorld {
  std::vector<std::string> entities;
  /// Parallel to `entities`: each entity's tenures, chronological,
  /// gap-free over [first_year, last_year].
  std::vector<std::vector<Tenure>> timelines;
  TemporalConfig config;

  /// The true holder for an entity at a year, or "" outside the range.
  std::string HolderAt(size_t entity, int year) const;
};

struct TemporalDocument {
  std::string source;
  std::string text;
};

struct TemporalCorpus {
  TemporalWorld world;
  std::vector<TemporalDocument> documents;
};

TemporalCorpus GenerateTemporalCorpus(const TemporalConfig& config);

}  // namespace akb::synth

#endif  // AKB_SYNTH_TEMPORAL_GEN_H_

#include "synth/world.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "synth/names.h"

namespace akb::synth {

namespace {

std::string MakeEntityName(EntityNameStyle style, TitleGenerator* titles,
                           PlaceNameGenerator* places) {
  switch (style) {
    case EntityNameStyle::kTitle:
      return titles->Next();
    case EntityNameStyle::kPlace:
      return places->Next();
    case EntityNameStyle::kUniversity:
      return "University of " + places->Next();
    case EntityNameStyle::kHotel:
      return "Hotel " + places->Next();
  }
  return titles->Next();
}

// Builds the per-attribute candidate value pool.
std::vector<std::string> BuildValuePool(ValueDomainKind domain,
                                        size_t pool_size, Rng* rng,
                                        PersonNameGenerator* persons,
                                        TitleGenerator* titles) {
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  switch (domain) {
    case ValueDomainKind::kNumeric:
      for (size_t i = 0; i < pool_size; ++i) {
        pool.push_back(std::to_string(rng->UniformInt(1, 2000000)));
      }
      break;
    case ValueDomainKind::kPerson:
      for (size_t i = 0; i < pool_size; ++i) pool.push_back(persons->Next());
      break;
    case ValueDomainKind::kCategorical:
      for (size_t i = 0; i < pool_size; ++i) {
        // Short title-like strings without the leading article.
        std::string t = titles->Next();
        if (StartsWith(t, "The ")) t = t.substr(4);
        pool.push_back(std::move(t));
      }
      break;
    case ValueDomainKind::kLocation:
      break;  // values come from the hierarchy, not a pool
  }
  return pool;
}

}  // namespace

WorldConfig WorldConfig::PaperDefault() {
  WorldConfig config;
  config.seed = 42;
  config.classes = {
      {"Book", 120, 120, EntityNameStyle::kTitle},
      {"Film", 110, 150, EntityNameStyle::kTitle},
      {"Country", 550, 80, EntityNameStyle::kPlace},
      {"University", 600, 90, EntityNameStyle::kUniversity},
      {"Hotel", 300, 60, EntityNameStyle::kHotel},
  };
  return config;
}

WorldConfig WorldConfig::Small() {
  WorldConfig config;
  config.seed = 7;
  config.classes = {
      {"Book", 12, 15, EntityNameStyle::kTitle},
      {"Film", 14, 15, EntityNameStyle::kTitle},
      {"Country", 10, 8, EntityNameStyle::kPlace},
  };
  config.hierarchy_countries = 4;
  config.hierarchy_regions_per_country = 2;
  config.hierarchy_cities_per_region = 3;
  config.value_pool_size = 10;
  return config;
}

std::optional<AttributeId> WorldClass::FindAttribute(
    std::string_view name) const {
  auto it = attribute_index.find(NormalizeSurface(name));
  if (it == attribute_index.end()) return std::nullopt;
  return it->second;
}

World World::Build(const WorldConfig& config) {
  World world;
  world.config_ = config;

  Rng master(config.seed);
  // Entity-name generators are shared across classes so entity names are
  // globally unique (queries and sentences mention entities by bare name).
  TitleGenerator entity_titles{Rng(config.seed ^ 0x9e3779b9ull)};
  PlaceNameGenerator entity_places{Rng(config.seed ^ 0x7f4a7c15ull)};
  world.hierarchy_ = BuildLocationHierarchy(
      config.hierarchy_countries, config.hierarchy_regions_per_country,
      config.hierarchy_cities_per_region, master.NextU64());
  std::vector<HierarchyNodeId> leaves = world.hierarchy_.Leaves();

  for (const ClassConfig& cc : config.classes) {
    Rng rng = master.Fork();
    WorldClass wc;
    wc.name = cc.name;
    wc.name_style = cc.name_style;

    // --- Attributes.
    AttributePhraseGenerator phrases{rng.Fork()};
    PersonNameGenerator persons{rng.Fork()};
    TitleGenerator value_titles{rng.Fork()};
    std::vector<std::string> names = phrases.Generate(cc.num_attributes);
    for (size_t i = 0; i < names.size(); ++i) {
      AttributeSpec spec;
      spec.name = names[i];
      double u = rng.NextDouble();
      if (u < config.location_attribute_rate) {
        spec.domain = ValueDomainKind::kLocation;
      } else if (u < config.location_attribute_rate +
                         config.person_attribute_rate) {
        spec.domain = ValueDomainKind::kPerson;
      } else if (u < config.location_attribute_rate +
                         config.person_attribute_rate +
                         config.numeric_attribute_rate) {
        spec.domain = ValueDomainKind::kNumeric;
      } else {
        spec.domain = ValueDomainKind::kCategorical;
      }
      // Location attributes are functional in the single-leaf sense; other
      // domains may be multi-truth.
      spec.functional = spec.domain == ValueDomainKind::kLocation ||
                        !rng.Bernoulli(config.non_functional_rate);
      spec.value_pool = BuildValuePool(spec.domain, config.value_pool_size,
                                       &rng, &persons, &value_titles);
      wc.attribute_index.emplace(NormalizeSurface(spec.name),
                                 static_cast<AttributeId>(wc.attributes.size()));
      wc.attributes.push_back(std::move(spec));
    }

    // --- Entities and ground-truth facts.
    for (size_t e = 0; e < cc.num_entities; ++e) {
      Entity entity;
      entity.name =
          MakeEntityName(cc.name_style, &entity_titles, &entity_places);
      entity.facts.reserve(wc.attributes.size());
      for (AttributeId a = 0; a < wc.attributes.size(); ++a) {
        const AttributeSpec& spec = wc.attributes[a];
        Fact fact;
        fact.attribute = a;
        if (spec.domain == ValueDomainKind::kLocation) {
          fact.location = leaves.empty() ? kNoHierarchyNode
                                         : leaves[rng.Index(leaves.size())];
          if (fact.location != kNoHierarchyNode) {
            fact.values.push_back(world.hierarchy_.name(fact.location));
          }
        } else {
          size_t count =
              spec.functional
                  ? 1
                  : 1 + rng.Index(std::max<size_t>(1, config.max_multi_values));
          auto picks =
              rng.SampleWithoutReplacement(spec.value_pool.size(), count);
          for (size_t p : picks) fact.values.push_back(spec.value_pool[p]);
        }
        entity.facts.push_back(std::move(fact));
      }
      wc.entities.push_back(std::move(entity));
    }
    world.classes_.push_back(std::move(wc));
  }
  return world;
}

std::optional<ClassId> World::FindClass(std::string_view name) const {
  for (ClassId i = 0; i < classes_.size(); ++i) {
    if (classes_[i].name == name) return i;
  }
  return std::nullopt;
}

bool World::IsTrueValue(ClassId cls_id, EntityId entity, AttributeId attribute,
                        std::string_view value) const {
  const WorldClass& wc = classes_[cls_id];
  if (entity >= wc.entities.size()) return false;
  if (attribute >= wc.attributes.size()) return false;
  const Fact& fact = wc.entities[entity].facts[attribute];
  std::string norm = NormalizeSurface(value);
  for (const std::string& v : fact.values) {
    if (NormalizeSurface(v) == norm) return true;
  }
  if (fact.location != kNoHierarchyNode) {
    // Any ancestor of the true leaf is a correct (coarser) answer.
    HierarchyNodeId node = hierarchy_.Find(std::string(Trim(value)));
    if (node == kNoHierarchyNode) {
      // Try the title-cased form (hierarchy names are title case).
      node = hierarchy_.Find(TitleCase(ToLower(value)));
    }
    if (node != kNoHierarchyNode &&
        hierarchy_.IsAncestorOrSelf(node, fact.location)) {
      return true;
    }
  }
  return false;
}

bool World::IsTrueAttribute(ClassId cls_id, std::string_view name) const {
  return classes_[cls_id].FindAttribute(name).has_value();
}

size_t World::TotalFacts() const {
  size_t total = 0;
  for (const auto& wc : classes_) {
    for (const auto& e : wc.entities) total += e.facts.size();
  }
  return total;
}

size_t World::TotalEntities() const {
  size_t total = 0;
  for (const auto& wc : classes_) total += wc.entities.size();
  return total;
}

}  // namespace akb::synth

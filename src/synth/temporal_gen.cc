#include "synth/temporal_gen.h"

#include <algorithm>

#include "synth/names.h"

namespace akb::synth {

std::string TemporalWorld::HolderAt(size_t entity, int year) const {
  if (entity >= timelines.size()) return "";
  for (const Tenure& tenure : timelines[entity]) {
    if (year >= tenure.start_year && year <= tenure.end_year) {
      return tenure.holder;
    }
  }
  return "";
}

TemporalCorpus GenerateTemporalCorpus(const TemporalConfig& config) {
  TemporalCorpus corpus;
  corpus.world.config = config;
  Rng rng(config.seed);

  PlaceNameGenerator places{rng.Fork()};
  PersonNameGenerator persons{rng.Fork()};

  // --- Entities with gap-free timelines.
  for (size_t e = 0; e < config.num_entities; ++e) {
    corpus.world.entities.push_back(places.Next());
    std::vector<Tenure> timeline;
    int year = config.first_year;
    while (year <= config.last_year) {
      Tenure tenure;
      tenure.holder = persons.Next();
      tenure.start_year = year;
      int tenure_len =
          1 + static_cast<int>(rng.Poisson(config.mean_tenure - 1.0));
      tenure.end_year = std::min(config.last_year, year + tenure_len - 1);
      year = tenure.end_year + 1;
      timeline.push_back(std::move(tenure));
    }
    corpus.world.timelines.push_back(std::move(timeline));
  }

  // --- Documents with dated sentences.
  corpus.documents.resize(std::max<size_t>(1, config.num_documents));
  for (size_t d = 0; d < corpus.documents.size(); ++d) {
    corpus.documents[d].source = "news-" + rng.Identifier(5) + ".example.com";
  }
  size_t doc_index = 0;
  for (size_t e = 0; e < corpus.world.entities.size(); ++e) {
    const std::string& entity = corpus.world.entities[e];
    for (int year = config.first_year; year <= config.last_year; ++year) {
      if (!rng.Bernoulli(config.mention_rate)) continue;
      std::string holder = corpus.world.HolderAt(e, year);
      if (rng.Bernoulli(config.error_rate)) {
        holder = persons.Next();  // a wrong person
      }
      std::string sentence;
      bool is_start_year = false;
      for (const Tenure& tenure : corpus.world.timelines[e]) {
        if (tenure.start_year == year && tenure.holder == holder) {
          is_start_year = true;
        }
      }
      if (is_start_year && rng.Bernoulli(0.5)) {
        sentence = holder + " became the " + config.attribute + " of " +
                   entity + " in " + std::to_string(year) + ".";
      } else {
        sentence = "In " + std::to_string(year) + ", the " +
                   config.attribute + " of " + entity + " was " + holder +
                   ".";
      }
      TemporalDocument& doc = corpus.documents[doc_index % corpus.documents.size()];
      ++doc_index;
      doc.text += sentence + " ";
    }
  }
  return corpus;
}

}  // namespace akb::synth

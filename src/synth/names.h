// Deterministic name generation for the synthetic world: entity names,
// attribute noun phrases, place names. All generation is driven by a seeded
// Rng so worlds are exactly reproducible.
#ifndef AKB_SYNTH_NAMES_H_
#define AKB_SYNTH_NAMES_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"

namespace akb::synth {

/// Generates unique pronounceable place names ("Varonia", "Keldran").
class PlaceNameGenerator {
 public:
  explicit PlaceNameGenerator(Rng rng) : rng_(rng) {}

  /// Returns a fresh place name, distinct from all previously returned.
  std::string Next();

 private:
  Rng rng_;
  std::unordered_set<std::string> used_;
};

/// Generates unique multi-word titles ("The Silent Harbor") for books/films.
class TitleGenerator {
 public:
  explicit TitleGenerator(Rng rng) : rng_(rng) {}

  std::string Next();

 private:
  Rng rng_;
  std::unordered_set<std::string> used_;
};

/// Generates unique person names ("Elena Marsh").
class PersonNameGenerator {
 public:
  explicit PersonNameGenerator(Rng rng) : rng_(rng) {}

  std::string Next();

 private:
  Rng rng_;
  std::unordered_set<std::string> used_;
};

/// Generates unique attribute noun phrases ("original title",
/// "total enrollment", "average room rate"). The phrase inventory is large
/// enough (modifier x noun cross product) for the Country/University-sized
/// attribute pools of Table 2.
class AttributePhraseGenerator {
 public:
  explicit AttributePhraseGenerator(Rng rng) : rng_(rng) {}

  /// Returns `count` distinct attribute phrases.
  std::vector<std::string> Generate(size_t count);

 private:
  Rng rng_;
};

}  // namespace akb::synth

#endif  // AKB_SYNTH_NAMES_H_

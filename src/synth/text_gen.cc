#include "synth/text_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "synth/noise.h"

namespace akb::synth {

namespace {

const char* const kDistractors[] = {
    "Critics were divided about the announcement.",
    "More details will follow in the coming weeks.",
    "The event attracted considerable attention online.",
    "Several sources declined to comment on the matter.",
    "Observers called the development long overdue.",
    "A spokesperson confirmed the schedule remains unchanged.",
    "The community reacted with a mix of surprise and enthusiasm.",
    "Further coverage is available in our weekend edition.",
};

// Factual sentence templates. {A}=attribute, {E}=entity, {V}=value.
// These deliberately align with the lexical patterns the extractor learns.
const char* const kFactTemplates[] = {
    "The {A} of {E} is {V}.",
    "{E}'s {A} is {V}.",
    "{V} is the {A} of {E}.",
    "{E} has a {A} of {V}.",
};

std::string FillTemplate(const char* tmpl, const std::string& a,
                         const std::string& e, const std::string& v) {
  std::string out;
  for (const char* p = tmpl; *p != '\0'; ++p) {
    if (*p == '{' && p[1] != '\0' && p[2] == '}') {
      switch (p[1]) {
        case 'A':
          out += a;
          break;
        case 'E':
          out += e;
          break;
        case 'V':
          out += v;
          break;
        default:
          out.push_back(*p);
          continue;
      }
      p += 2;
    } else {
      out.push_back(*p);
    }
  }
  return out;
}

}  // namespace

std::vector<TextArticle> GenerateArticles(const World& world,
                                          const TextConfig& config) {
  std::vector<TextArticle> articles;
  auto cls_id = world.FindClass(config.class_name);
  if (!cls_id) {
    AKB_LOG(Warning) << "GenerateArticles: unknown class '"
                     << config.class_name << "'";
    return articles;
  }
  const WorldClass& wc = world.cls(*cls_id);
  if (wc.entities.empty() || wc.attributes.empty()) return articles;

  Rng master(config.seed);
  for (size_t n = 0; n < config.num_articles; ++n) {
    Rng rng = master.Fork();
    TextArticle article;
    article.source = "text-" + rng.Identifier(5) + ".example.com";

    for (size_t f = 0; f < config.facts_per_article; ++f) {
      EntityId entity_id =
          static_cast<EntityId>(rng.Index(wc.entities.size()));
      const Entity& entity = wc.entities[entity_id];
      AttributeId attr_id =
          static_cast<AttributeId>(rng.Index(wc.attributes.size()));
      const AttributeSpec& spec = wc.attributes[attr_id];
      const Fact& fact = entity.facts[attr_id];

      TextFact ledger;
      ledger.entity = entity_id;
      ledger.attribute = attr_id;
      ledger.label = rng.Bernoulli(config.attr_misspell_rate)
                         ? RenderSurface(spec.name, SurfaceStyle::kMisspelled,
                                         &rng)
                         : spec.name;

      // Value (true or erroneous).
      if (!fact.values.empty() && !rng.Bernoulli(config.value_error_rate)) {
        ledger.value = fact.values[rng.Index(fact.values.size())];
        ledger.value_correct = true;
      } else {
        ledger.value_correct = false;
        if (spec.value_pool.size() > 1) {
          ledger.value = spec.value_pool[rng.Index(spec.value_pool.size())];
          ledger.value_correct =
              std::find(fact.values.begin(), fact.values.end(),
                        ledger.value) != fact.values.end();
        } else if (!fact.values.empty()) {
          ledger.value = Misspell(fact.values.front(), &rng);
        } else {
          ledger.value = "unknown";
        }
      }

      const char* tmpl = kFactTemplates[rng.Index(std::size(kFactTemplates))];
      article.text +=
          FillTemplate(tmpl, ledger.label, entity.name, ledger.value);
      article.text += " ";
      article.facts.push_back(std::move(ledger));

      // Distractor prose.
      size_t distractors = rng.Poisson(config.distractor_rate);
      for (size_t d = 0; d < distractors; ++d) {
        article.text += kDistractors[rng.Index(std::size(kDistractors))];
        article.text += " ";
      }
    }
    articles.push_back(std::move(article));
  }
  return articles;
}

}  // namespace akb::synth

#include "synth/text_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "synth/noise.h"

namespace akb::synth {

namespace {

const char* const kDistractors[] = {
    "Critics were divided about the announcement.",
    "More details will follow in the coming weeks.",
    "The event attracted considerable attention online.",
    "Several sources declined to comment on the matter.",
    "Observers called the development long overdue.",
    "A spokesperson confirmed the schedule remains unchanged.",
    "The community reacted with a mix of surprise and enthusiasm.",
    "Further coverage is available in our weekend edition.",
};

// Factual sentence templates. {A}=attribute, {E}=entity, {V}=value.
// These deliberately align with the lexical patterns the extractor learns.
const char* const kFactTemplates[] = {
    "The {A} of {E} is {V}.",
    "{E}'s {A} is {V}.",
    "{V} is the {A} of {E}.",
    "{E} has a {A} of {V}.",
};

std::string FillTemplate(const char* tmpl, const std::string& a,
                         const std::string& e, const std::string& v) {
  std::string out;
  for (const char* p = tmpl; *p != '\0'; ++p) {
    if (*p == '{' && p[1] != '\0' && p[2] == '}') {
      switch (p[1]) {
        case 'A':
          out += a;
          break;
        case 'E':
          out += e;
          break;
        case 'V':
          out += v;
          break;
        default:
          out.push_back(*p);
          continue;
      }
      p += 2;
    } else {
      out.push_back(*p);
    }
  }
  return out;
}

// Renders one article from its forked RNG (all randomness is fork-local,
// which is what makes range generation deterministic).
TextArticle GenerateOneArticle(const World& world, const WorldClass& wc,
                               const TextConfig& config, Rng rng) {
  TextArticle article;
  article.source = "text-" + rng.Identifier(5) + ".example.com";

  for (size_t f = 0; f < config.facts_per_article; ++f) {
    EntityId entity_id =
        static_cast<EntityId>(rng.Index(wc.entities.size()));
    const Entity& entity = wc.entities[entity_id];
    AttributeId attr_id =
        static_cast<AttributeId>(rng.Index(wc.attributes.size()));
    const AttributeSpec& spec = wc.attributes[attr_id];
    const Fact& fact = entity.facts[attr_id];

    TextFact ledger;
    ledger.entity = entity_id;
    ledger.attribute = attr_id;
    ledger.label = rng.Bernoulli(config.attr_misspell_rate)
                       ? RenderSurface(spec.name, SurfaceStyle::kMisspelled,
                                       &rng)
                       : spec.name;

    // Value (true or erroneous).
    if (!fact.values.empty() && !rng.Bernoulli(config.value_error_rate)) {
      ledger.value = fact.values[rng.Index(fact.values.size())];
      ledger.value_correct = true;
    } else {
      ledger.value_correct = false;
      if (spec.value_pool.size() > 1) {
        ledger.value = spec.value_pool[rng.Index(spec.value_pool.size())];
        ledger.value_correct =
            std::find(fact.values.begin(), fact.values.end(),
                      ledger.value) != fact.values.end();
      } else if (!fact.values.empty()) {
        ledger.value = Misspell(fact.values.front(), &rng);
      } else {
        ledger.value = "unknown";
      }
    }

    const char* tmpl = kFactTemplates[rng.Index(std::size(kFactTemplates))];
    article.text +=
        FillTemplate(tmpl, ledger.label, entity.name, ledger.value);
    article.text += " ";
    article.facts.push_back(std::move(ledger));

    // Distractor prose.
    size_t distractors = rng.Poisson(config.distractor_rate);
    for (size_t d = 0; d < distractors; ++d) {
      article.text += kDistractors[rng.Index(std::size(kDistractors))];
      article.text += " ";
    }
  }
  return article;
}

}  // namespace

std::vector<TextArticle> GenerateArticleRange(const World& world,
                                              const TextConfig& config,
                                              size_t begin, size_t end) {
  std::vector<TextArticle> articles;
  end = std::min(end, config.num_articles);
  if (begin >= end) return articles;
  auto cls_id = world.FindClass(config.class_name);
  if (!cls_id) {
    AKB_LOG(Warning) << "GenerateArticleRange: unknown class '"
                     << config.class_name << "'";
    return articles;
  }
  const WorldClass& wc = world.cls(*cls_id);
  if (wc.entities.empty() || wc.attributes.empty()) return articles;

  // Article n always gets fork n of the master, whichever range renders
  // it — see GenerateSiteRange for the full determinism argument.
  Rng master(config.seed);
  articles.reserve(end - begin);
  for (size_t n = 0; n < end; ++n) {
    Rng rng = master.Fork();
    if (n < begin) continue;
    articles.push_back(GenerateOneArticle(world, wc, config, rng));
  }
  return articles;
}

std::vector<TextArticle> GenerateArticles(const World& world,
                                          const TextConfig& config) {
  return GenerateArticleRange(world, config, 0, config.num_articles);
}

}  // namespace akb::synth

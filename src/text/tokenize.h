// Word tokenization and sentence splitting for Web-text and query-stream
// processing.
#ifndef AKB_TEXT_TOKENIZE_H_
#define AKB_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace akb::text {

/// Splits into lowercase word tokens. Apostrophe-s is split off as the token
/// "'s" (needed by the "E's A" query pattern); other punctuation becomes
/// single-character tokens; numbers stay whole.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Splits text into sentences on . ! ? followed by whitespace/EOF, keeping
/// abbreviations like "Dr." and decimal numbers intact (best-effort).
std::vector<std::string> SplitSentences(std::string_view s);

/// Joins word tokens back into a readable string (no space before
/// punctuation or "'s").
std::string JoinTokens(const std::vector<std::string>& tokens, size_t begin,
                       size_t end);

}  // namespace akb::text

#endif  // AKB_TEXT_TOKENIZE_H_

// Lexical slot patterns ("regular lexical patterns" in the paper, §3.1).
//
// A pattern is a token sequence containing literals, optional groups,
// single-word alternations, and named slots that capture 1..k tokens:
//
//   "what is the [A] of ?(the|a|an) [E]"
//   "the [A] of ?(the|a|an) [E]"
//   "[E] 's [A]"
//
// The same machinery serves the query-stream extractor (matching query
// records) and the Web-text extractor (learning which patterns connect seed
// (entity, attribute) pairs in sentences, then applying them).
#ifndef AKB_TEXT_PATTERN_H_
#define AKB_TEXT_PATTERN_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace akb::text {

/// A captured slot: token index range [begin, end).
struct SlotSpan {
  size_t begin = 0;
  size_t end = 0;

  bool operator==(const SlotSpan& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// One complete match of a pattern against a token sequence.
struct PatternMatch {
  /// Token range of the whole match.
  SlotSpan extent;
  /// slot name -> captured token range.
  std::map<std::string, SlotSpan> slots;
};

/// A compiled lexical pattern.
class Pattern {
 public:
  /// Parses the pattern language:
  ///   word            literal token (matched case-insensitively)
  ///   [Name]          slot capturing 1..max_slot_tokens tokens
  ///   (a|b|c)         exactly one of the listed words
  ///   ?(a|b|c)        optionally one of the listed words
  /// Whitespace separates elements. Returns ParseError on malformed input.
  static Result<Pattern> Parse(std::string_view spec);

  /// All non-overlapping matches scanning left to right. Slots are matched
  /// lazily (shortest first) and may capture at most `max_slot_tokens`
  /// tokens; a slot never captures a sentence-punctuation token.
  std::vector<PatternMatch> FindAll(const std::vector<std::string>& tokens,
                                    size_t max_slot_tokens = 4) const;

  /// True iff the pattern matches starting exactly at `pos`; fills `match`.
  bool MatchAt(const std::vector<std::string>& tokens, size_t pos,
               size_t max_slot_tokens, PatternMatch* match) const;

  /// Anchored match: the pattern must consume the whole token sequence
  /// (slots backtrack/extend as needed). Used for query records, which are
  /// complete utterances of a pattern.
  bool MatchWhole(const std::vector<std::string>& tokens,
                  size_t max_slot_tokens, PatternMatch* match) const;

  /// Slot names in order of appearance.
  const std::vector<std::string>& slot_names() const { return slot_names_; }

  /// The original spec text.
  const std::string& spec() const { return spec_; }

 private:
  enum class ElementKind : uint8_t { kLiteral, kSlot, kAlternation };
  struct Element {
    ElementKind kind;
    bool optional = false;
    std::string value;                  // literal word or slot name
    std::vector<std::string> choices;   // alternation words
  };

  bool MatchFrom(const std::vector<std::string>& tokens, size_t pos,
                 size_t element_index, size_t max_slot_tokens, bool anchored,
                 PatternMatch* match) const;

  std::string spec_;
  std::vector<Element> elements_;
  std::vector<std::string> slot_names_;
};

}  // namespace akb::text

#endif  // AKB_TEXT_PATTERN_H_

#include "text/tokenize.h"

#include <cctype>

#include "common/string_util.h"

namespace akb::text {

namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == '_';
}

bool IsPunct(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::ispunct(u) && c != '\'' && c != '-' && c != '_';
}

const char* const kAbbreviations[] = {"dr.",  "mr.", "mrs.", "ms.", "prof.",
                                      "st.",  "no.", "vs.",  "etc.", "e.g.",
                                      "i.e.", "u.s."};

bool EndsWithAbbreviation(std::string_view text, size_t dot_pos) {
  for (const char* abbr : kAbbreviations) {
    std::string_view a(abbr);
    if (dot_pos + 1 < a.size()) continue;
    size_t start = dot_pos + 1 - a.size();
    if (akb::ToLower(text.substr(start, a.size())) == a) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isspace(u)) {
      ++i;
      continue;
    }
    if (c == '\'') {
      // "'s" clitic; otherwise a punctuation token.
      if (i + 1 < s.size() && (s[i + 1] == 's' || s[i + 1] == 'S') &&
          (i + 2 >= s.size() || !IsWordChar(s[i + 2]))) {
        tokens.push_back("'s");
        i += 2;
      } else {
        tokens.push_back("'");
        ++i;
      }
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < s.size() && IsWordChar(s[i])) ++i;
      tokens.push_back(akb::ToLower(s.substr(start, i - start)));
      continue;
    }
    if (IsPunct(c)) {
      tokens.push_back(std::string(1, c));
      ++i;
      continue;
    }
    ++i;  // other bytes (e.g. UTF-8 continuation) skipped
  }
  return tokens;
}

std::vector<std::string> SplitSentences(std::string_view s) {
  std::vector<std::string> sentences;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '.' && c != '!' && c != '?') continue;
    // A decimal point ("3.14") does not end a sentence.
    if (c == '.' && i + 1 < s.size() &&
        std::isdigit(static_cast<unsigned char>(s[i + 1]))) {
      continue;
    }
    if (c == '.' && EndsWithAbbreviation(s, i)) continue;
    bool boundary = i + 1 >= s.size() ||
                    std::isspace(static_cast<unsigned char>(s[i + 1]));
    if (!boundary) continue;
    std::string_view sentence = akb::Trim(s.substr(start, i - start + 1));
    if (!sentence.empty()) sentences.emplace_back(sentence);
    start = i + 1;
  }
  std::string_view tail = akb::Trim(s.substr(start));
  if (!tail.empty()) sentences.emplace_back(tail);
  return sentences;
}

std::string JoinTokens(const std::vector<std::string>& tokens, size_t begin,
                       size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    bool no_space = t == "'s" || (t.size() == 1 && IsPunct(t[0]));
    if (!out.empty() && !no_space) out.push_back(' ');
    out += t;
  }
  return out;
}

}  // namespace akb::text

#include "text/pattern.h"

#include <cctype>

#include "common/string_util.h"

namespace akb::text {

namespace {

bool IsSentencePunct(const std::string& token) {
  return token.size() == 1 &&
         std::ispunct(static_cast<unsigned char>(token[0]));
}

}  // namespace

Result<Pattern> Pattern::Parse(std::string_view spec) {
  Pattern pattern;
  pattern.spec_ = std::string(spec);
  for (std::string_view raw : akb::SplitWhitespace(spec)) {
    Element element;
    std::string_view piece = raw;
    if (!piece.empty() && piece[0] == '?') {
      element.optional = true;
      piece = piece.substr(1);
      if (piece.empty() || piece[0] != '(') {
        return Status::ParseError("'?' must be followed by '(...)' in '" +
                                  std::string(raw) + "'");
      }
    }
    if (!piece.empty() && piece[0] == '[') {
      if (piece.back() != ']' || piece.size() < 3) {
        return Status::ParseError("malformed slot '" + std::string(raw) + "'");
      }
      element.kind = ElementKind::kSlot;
      element.value = std::string(piece.substr(1, piece.size() - 2));
      pattern.slot_names_.push_back(element.value);
    } else if (!piece.empty() && piece[0] == '(') {
      if (piece.back() != ')' || piece.size() < 3) {
        return Status::ParseError("malformed alternation '" +
                                  std::string(raw) + "'");
      }
      element.kind = ElementKind::kAlternation;
      for (const auto& choice :
           akb::Split(piece.substr(1, piece.size() - 2), '|')) {
        if (choice.empty()) {
          return Status::ParseError("empty alternation choice in '" +
                                    std::string(raw) + "'");
        }
        element.choices.push_back(akb::ToLower(choice));
      }
    } else {
      element.kind = ElementKind::kLiteral;
      element.value = akb::ToLower(piece);
    }
    pattern.elements_.push_back(std::move(element));
  }
  if (pattern.elements_.empty()) {
    return Status::ParseError("empty pattern");
  }
  return pattern;
}

bool Pattern::MatchFrom(const std::vector<std::string>& tokens, size_t pos,
                        size_t element_index, size_t max_slot_tokens,
                        bool anchored, PatternMatch* match) const {
  if (element_index == elements_.size()) {
    if (anchored && pos != tokens.size()) return false;
    match->extent.end = pos;
    return true;
  }
  const Element& element = elements_[element_index];
  switch (element.kind) {
    case ElementKind::kLiteral:
      if (pos < tokens.size() && tokens[pos] == element.value) {
        return MatchFrom(tokens, pos + 1, element_index + 1, max_slot_tokens,
                         anchored, match);
      }
      return false;
    case ElementKind::kAlternation: {
      if (pos < tokens.size()) {
        for (const auto& choice : element.choices) {
          if (tokens[pos] == choice) {
            if (MatchFrom(tokens, pos + 1, element_index + 1, max_slot_tokens,
                          anchored, match)) {
              return true;
            }
            break;  // the same word cannot match a different choice
          }
        }
      }
      if (element.optional) {
        return MatchFrom(tokens, pos, element_index + 1, max_slot_tokens,
                         anchored, match);
      }
      return false;
    }
    case ElementKind::kSlot: {
      // Feasible capture lengths: 1..max, bounded by the sequence end and
      // by sentence punctuation (a slot never swallows a '.' or ',').
      size_t max_len = 0;
      while (max_len < max_slot_tokens && pos + max_len < tokens.size() &&
             !IsSentencePunct(tokens[pos + max_len])) {
        ++max_len;
      }
      if (max_len == 0) return false;
      bool is_final = element_index + 1 == elements_.size();
      // Interior slots are lazy so literal context binds tightly; a final
      // slot is greedy so trailing captures (values) are not truncated.
      for (size_t k = 0; k < max_len; ++k) {
        size_t len = is_final ? max_len - k : k + 1;
        match->slots[element.value] = SlotSpan{pos, pos + len};
        if (MatchFrom(tokens, pos + len, element_index + 1, max_slot_tokens,
                      anchored, match)) {
          return true;
        }
      }
      match->slots.erase(element.value);
      return false;
    }
  }
  return false;
}

bool Pattern::MatchAt(const std::vector<std::string>& tokens, size_t pos,
                      size_t max_slot_tokens, PatternMatch* match) const {
  match->slots.clear();
  match->extent.begin = pos;
  return MatchFrom(tokens, pos, 0, max_slot_tokens, /*anchored=*/false,
                   match);
}

bool Pattern::MatchWhole(const std::vector<std::string>& tokens,
                         size_t max_slot_tokens, PatternMatch* match) const {
  match->slots.clear();
  match->extent.begin = 0;
  return MatchFrom(tokens, 0, 0, max_slot_tokens, /*anchored=*/true, match);
}

std::vector<PatternMatch> Pattern::FindAll(
    const std::vector<std::string>& tokens, size_t max_slot_tokens) const {
  std::vector<PatternMatch> matches;
  size_t pos = 0;
  while (pos < tokens.size()) {
    PatternMatch match;
    if (MatchAt(tokens, pos, max_slot_tokens, &match)) {
      matches.push_back(match);
      pos = match.extent.end > pos ? match.extent.end : pos + 1;
    } else {
      ++pos;
    }
  }
  return matches;
}

}  // namespace akb::text

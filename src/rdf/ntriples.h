// N-Triples-style serialization for triple stores.
//
// Format: one "<s> <p> <o> ." line per distinct triple. With provenance
// enabled, each claim additionally carries a trailing comment
// "# source=<src> extractor=<name> confidence=<c>" so round-trips preserve
// the fusion inputs.
#ifndef AKB_RDF_NTRIPLES_H_
#define AKB_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace akb::rdf {

struct NTriplesWriteOptions {
  /// Write one line per claim with provenance comments instead of one line
  /// per distinct triple.
  bool include_provenance = false;
};

/// Serializes the store.
std::string WriteNTriples(const TripleStore& store,
                          const NTriplesWriteOptions& options = {});

/// Parses N-Triples text into `store` (appending). Lines that are empty or
/// pure comments are skipped; provenance comments produced by WriteNTriples
/// are recognized and restored. Returns ParseError with the line number on
/// malformed input.
Status ReadNTriples(std::string_view text, TripleStore* store);

/// Parses a single term in N-Triples surface form.
Result<Term> ParseTerm(std::string_view text);

/// Serializes the store to a file. Returns IoError on failure.
Status WriteNTriplesFile(const TripleStore& store, const std::string& path,
                         const NTriplesWriteOptions& options = {});

/// Parses an N-Triples file into `store` (appending).
Status ReadNTriplesFile(const std::string& path, TripleStore* store);

}  // namespace akb::rdf

#endif  // AKB_RDF_NTRIPLES_H_

#include "rdf/triple_store.h"

namespace akb::rdf {

std::string_view ExtractorKindToString(ExtractorKind kind) {
  switch (kind) {
    case ExtractorKind::kGroundTruth:
      return "ground_truth";
    case ExtractorKind::kExistingKb:
      return "existing_kb";
    case ExtractorKind::kQueryStream:
      return "query_stream";
    case ExtractorKind::kDomTree:
      return "dom_tree";
    case ExtractorKind::kWebText:
      return "web_text";
    case ExtractorKind::kFusion:
      return "fusion";
    case ExtractorKind::kOther:
      return "other";
  }
  return "unknown";
}

size_t TripleStore::Insert(const Triple& triple, Provenance provenance) {
  size_t claim_index = claims_.size();
  claims_.push_back(Claim{triple, std::move(provenance)});

  auto it = triple_index_.find(triple);
  size_t ti;
  if (it != triple_index_.end()) {
    ti = it->second;
  } else {
    ti = triples_.size();
    triples_.push_back(triple);
    claims_of_.emplace_back();
    triple_index_.emplace(triple, ti);
    by_subject_[triple.subject].push_back(ti);
    by_predicate_[triple.predicate].push_back(ti);
    by_object_[triple.object].push_back(ti);
  }
  claims_of_[ti].push_back(claim_index);
  return ti;
}

size_t TripleStore::InsertDecoded(const Term& s, const Term& p, const Term& o,
                                  Provenance provenance) {
  Triple t{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)};
  return Insert(t, std::move(provenance));
}

bool TripleStore::Contains(const Triple& t) const {
  return triple_index_.count(t) > 0;
}

std::vector<size_t> TripleStore::Match(const TriplePattern& pattern) const {
  // Fully bound: direct lookup.
  if (pattern.subject && pattern.predicate && pattern.object) {
    auto it = triple_index_.find(
        Triple{pattern.subject, pattern.predicate, pattern.object});
    if (it == triple_index_.end()) return {};
    return {it->second};
  }

  // Pick the smallest posting list among the bound positions as the
  // candidate set — with >= 2 positions bound, probing the larger lists
  // would scan (and reject) every triple of a hot subject/predicate even
  // when the other bound position matches almost nothing. A bound term
  // with no posting list at all means zero matches, regardless of how
  // many triples the other positions touch: exit before scanning anything.
  const std::vector<size_t>* candidates = nullptr;
  bool dead_position = false;
  auto consider = [&](const std::unordered_map<TermId, std::vector<size_t>>&
                          index,
                      TermId key) {
    if (!key || dead_position) return;
    auto it = index.find(key);
    if (it == index.end()) {
      dead_position = true;
      return;
    }
    if (candidates == nullptr || it->second.size() < candidates->size()) {
      candidates = &it->second;
    }
  };
  consider(by_subject_, pattern.subject);
  consider(by_predicate_, pattern.predicate);
  consider(by_object_, pattern.object);
  if (dead_position) return {};

  std::vector<size_t> out;
  if (candidates == nullptr) {
    // Fully unbound: scan everything.
    out.resize(triples_.size());
    for (size_t i = 0; i < triples_.size(); ++i) out[i] = i;
    return out;
  }
  auto matches = [&](const Triple& t) {
    return (!pattern.subject || t.subject == pattern.subject) &&
           (!pattern.predicate || t.predicate == pattern.predicate) &&
           (!pattern.object || t.object == pattern.object);
  };
  // Posting lists record distinct-triple indices in creation order, which
  // is strictly ascending (the store is append-only), so the filtered
  // output is already sorted — no sort pass needed.
  for (size_t ti : *candidates) {
    if (matches(triples_[ti])) out.push_back(ti);
  }
  return out;
}

std::string TripleStore::DecodeToString(size_t triple_index) const {
  const Triple& t = triples_[triple_index];
  return dict_.Lookup(t.subject).ToString() + " " +
         dict_.Lookup(t.predicate).ToString() + " " +
         dict_.Lookup(t.object).ToString() + " .";
}

std::vector<TermId> TripleStore::ObjectsOf(TermId subject,
                                           TermId predicate) const {
  std::vector<TermId> out;
  for (size_t ti : Match(TriplePattern{subject, predicate, kInvalidTermId})) {
    out.push_back(triples_[ti].object);
  }
  return out;
}

}  // namespace akb::rdf

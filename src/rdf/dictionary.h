// Term dictionary: bidirectional mapping between Terms and dense TermIds.
#ifndef AKB_RDF_DICTIONARY_H_
#define AKB_RDF_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace akb::rdf {

/// Interns terms, assigning dense ids starting at 1 (0 = kInvalidTermId,
/// used as the wildcard in triple patterns). Not thread-safe; a store owns
/// exactly one dictionary and serializes access.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId Intern(const Term& term);

  /// Convenience interning helpers.
  TermId InternIri(std::string iri) {
    return Intern(Term::Iri(std::move(iri)));
  }
  TermId InternLiteral(std::string value) {
    return Intern(Term::Literal(std::move(value)));
  }

  /// Returns the id of `term` or kInvalidTermId if it was never interned.
  TermId Find(const Term& term) const;

  /// Decodes an id. Precondition: id was returned by Intern.
  const Term& Lookup(TermId id) const;

  /// True iff id is a valid, previously interned id.
  bool Contains(TermId id) const { return id >= 1 && id <= terms_.size(); }

  /// Number of distinct terms interned.
  size_t size() const { return terms_.size(); }

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace akb::rdf

#endif  // AKB_RDF_DICTIONARY_H_

// Binary snapshots of a TripleStore — the persistence layer behind the
// pipeline's Phase 1 -> Phase 2 handoff and the serve path's cold start.
//
// Two wire formats share one error taxonomy and one Save/Load surface:
//
// ## Version 1 — streamed, varint-packed (portable archive)
//
//   file   := magic[8]="AKBSNAP1" u32 version section* end-marker(0xFF)
//   section:= u8 id, varint record_count, block*, varint 0, u32 crc32c
//   block  := varint byte_len (> 0), payload bytes
//
// Three sections in fixed order: terms (id 1: u8 kind, varint len, bytes —
// the dictionary in id order, so TermIds are implicit), distinct triples
// (id 2: varint s/p/o term ids), and claims (id 3: varint s/p/o, u8
// extractor, u64 confidence bits, varint source len, bytes). Records never
// span blocks, blocks are bounded, and each section's CRC32c covers its
// concatenated payload, so both writer and reader stream with one block of
// buffering and corruption anywhere is detected before any state escapes.
//
// ## Version 2 — page-aligned, zero-copy (serve image)
//
// The on-disk bytes *are* the serve-time structures: a flat dictionary
// arena (u64 offset table + u8 kinds + contiguous term bytes), the raw
// triple array, and the three sorted permutation indexes (u32 order + the
// packed u64 prefix keys for SPO/POS/OSP — exactly what serve::KbView
// binary-searches), plus a varint claims blob for pipeline warm-starts.
// Every section starts on a 4 KiB boundary and carries its own CRC32c; a
// footer indexes the sections and a fixed trailer at EOF carries the
// footer location, the element counts, the total file size, and a
// whole-file CRC. Loading a v2 snapshot into a serve view is therefore
// mmap + CRC/structure validation + pointer fixup — no parse, no sort —
// and N processes serving one snapshot share one physical copy through
// the page cache.
//
//   file    := header-page  (section, pad-to-4KiB)*  footer  trailer
//   header  := magic[8]="AKBSNAP2" u32le version=2 u32le header_crc
//              zero-pad to 4096
//   footer  := entry[11]; entry := u32 id, u32 0, u64 offset, u64 bytes,
//              u64 count, u32 crc32c, u32 0   (40 bytes each)
//   trailer := u64 footer_offset, u64 footer_bytes, u32 footer_crc,
//              u32 section_count, u64 terms, u64 triples, u64 claims,
//              u64 file_bytes, u32 file_crc, u32 0,
//              magic[8]="AKB2TRLR"             (72 bytes, at EOF)
//
// file_crc covers [0, footer end) — everything but the trailer, padding
// included — and every trailer field is either checked against the file
// or covered by a magic/CRC, so any single-byte corruption anywhere is a
// typed failure.
//
// Error taxonomy (both formats): kParseError = not a snapshot at all (bad
// magic); kUnimplemented = produced by a newer format version; kDataLoss =
// right format, damaged bytes (CRC mismatch, truncation, structural
// corruption); kIoError = the filesystem failed. LoadSnapshot never
// leaves the target store partially filled.
#ifndef AKB_RDF_SNAPSHOT_H_
#define AKB_RDF_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/mmap_file.h"
#include "rdf/triple.h"

namespace akb::rdf {

/// The wire formats a snapshot can be written in. Numeric values are the
/// on-disk version numbers.
enum class SnapshotFormat : uint32_t {
  kV1 = 1,  ///< streamed varint archive — portable, smallest, parse on load
  kV2 = 2,  ///< page-aligned zero-copy serve image — mmap on load
};

/// Version-1 wire version (the streamed format's newest revision).
inline constexpr uint32_t kSnapshotVersion = 1;
/// Version-2 wire version (the zero-copy format).
inline constexpr uint32_t kSnapshotVersionV2 = 2;

/// Sizes of one snapshot, reported by save/load/inspect. Section byte
/// counts are payload sizes (v1: including section framing; v2: exact
/// section lengths, excluding alignment padding).
struct SnapshotStats {
  uint32_t version = 0;
  uint64_t bytes = 0;    ///< total file size
  uint64_t terms = 0;    ///< dictionary entries
  uint64_t triples = 0;  ///< distinct triples
  uint64_t claims = 0;   ///< provenanced claims
  uint64_t dict_bytes = 0;     ///< dictionary sections (arena / terms)
  uint64_t triples_bytes = 0;  ///< triple array / triples section
  uint64_t index_bytes = 0;    ///< v2 only: SPO/POS/OSP order + key arrays
  uint64_t claims_bytes = 0;   ///< claims section
};

/// Fully validates the snapshot at `path` (magic, version, structure, and
/// every section CRC; either format) and returns its sizes without
/// keeping the store.
Result<SnapshotStats> ReadSnapshotInfo(const std::string& path);

/// Reads the leading magic of `path` and returns which snapshot format it
/// claims to be. kIoError if unreadable, kParseError if neither magic.
Result<SnapshotFormat> ProbeSnapshotFormat(const std::string& path);

/// CRC32c (Castagnoli), bit-reflected, init/xor-out 0xFFFFFFFF. `seed` is
/// the running value from a previous call, 0 to start. Uses the SSE4.2
/// crc32 instruction when the CPU has it (same polynomial, identical
/// values), the sliced table otherwise. Exposed for tests.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

// ---------------------------------------------------------------- v2 wire
// Constants exposed so fault-injection tests and tooling can do byte
// surgery with full knowledge of the layout. Little-endian throughout.
namespace snapshot_v2 {

inline constexpr char kMagic[8] = {'A', 'K', 'B', 'S', 'N', 'A', 'P', '2'};
inline constexpr char kTrailerMagic[8] = {'A', 'K', 'B', '2',
                                          'T', 'R', 'L', 'R'};
/// Every section starts on this boundary (and the header page is exactly
/// this long), so typed pointers into the mapping are always aligned.
inline constexpr uint64_t kSectionAlign = 4096;
inline constexpr uint64_t kHeaderBytes = 4096;
inline constexpr uint64_t kSectionEntryBytes = 40;
inline constexpr uint64_t kTrailerBytes = 72;
inline constexpr uint32_t kNumSections = 11;

/// Section ids in file order.
enum SectionId : uint32_t {
  kTermOffsets = 1,  ///< u64[terms + 1] offsets into the term-bytes arena
  kTermKinds = 2,    ///< u8[terms] TermKind values
  kTermBytes = 3,    ///< contiguous lexical bytes
  kTriples = 4,      ///< Triple[triples] (3 x u32le), store order
  kSpoOrder = 5,     ///< u32[triples]
  kSpoKeys = 6,      ///< u64[triples], packed (first << 32 | second)
  kPosOrder = 7,
  kPosKeys = 8,
  kOspOrder = 9,
  kOspKeys = 10,
  kClaims = 11,      ///< varint claim records (v1 record layout)
};

}  // namespace snapshot_v2

/// A fully validated, typed view over a mapped v2 snapshot. All pointers
/// alias `mapping`; holders must keep `mapping` alive for as long as they
/// dereference them (serve::KbView does this via the shared_ptr).
struct SnapshotV2View {
  std::shared_ptr<MmapFile> mapping;

  const uint64_t* term_offsets = nullptr;  ///< num_terms + 1 entries
  const uint8_t* term_kinds = nullptr;
  const char* term_bytes = nullptr;
  uint64_t num_terms = 0;

  const Triple* triples = nullptr;
  uint64_t num_triples = 0;

  /// Indexed by rdf::Permutation (kSpo, kPos, kOsp).
  const uint32_t* order[3] = {nullptr, nullptr, nullptr};
  const uint64_t* keys[3] = {nullptr, nullptr, nullptr};

  std::string_view claims;  ///< varint claim records, CRC-validated
  uint64_t num_claims = 0;

  SnapshotStats stats;
};

/// Maps the v2 snapshot at `path` and validates everything that can be
/// validated without parsing the claims blob: header, trailer, footer,
/// whole-file CRC, every section CRC, alignment, ranges, and the
/// structural invariants of the typed sections (offset-table monotonicity,
/// term-kind ranges, triple term-id bounds, order-entry bounds, key-array
/// sortedness). O(n) pointer-speed scans plus CRC — no allocation
/// proportional to the KB.
Result<SnapshotV2View> OpenSnapshotV2(const std::string& path);

}  // namespace akb::rdf

#endif  // AKB_RDF_SNAPSHOT_H_

// Binary snapshots of a TripleStore — the persistence layer behind the
// pipeline's Phase 1 -> Phase 2 handoff (save the extracted claims KB,
// reload it later and resume straight into fusion).
//
// Format (version 1), little-endian throughout:
//
//   file   := magic[8]="AKBSNAP1" u32 version section* end-marker(0xFF)
//   section:= u8 id, varint record_count, block*, varint 0, u32 crc32c
//   block  := varint byte_len (> 0), payload bytes
//
// Three sections in fixed order: terms (id 1: u8 kind, varint len, bytes —
// the dictionary in id order, so TermIds are implicit), distinct triples
// (id 2: varint s/p/o term ids), and claims (id 3: varint s/p/o, u8
// extractor, u64 confidence bits, varint source len, bytes). Records never
// span blocks, blocks are bounded, and each section's CRC32c covers its
// concatenated payload, so both writer and reader stream with one block of
// buffering and corruption anywhere is detected before any state escapes.
//
// Error taxonomy: kParseError = not a snapshot at all (bad magic);
// kUnimplemented = produced by a newer format version; kDataLoss = right
// format, damaged bytes (CRC mismatch, truncation, structural corruption);
// kIoError = the filesystem failed. LoadSnapshot never leaves the target
// store partially filled.
#ifndef AKB_RDF_SNAPSHOT_H_
#define AKB_RDF_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace akb::rdf {

/// Newest snapshot format version this build reads and writes.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Sizes of one snapshot, reported by save/load/inspect.
struct SnapshotStats {
  uint32_t version = 0;
  uint64_t bytes = 0;    ///< total file size
  uint64_t terms = 0;    ///< dictionary entries
  uint64_t triples = 0;  ///< distinct triples
  uint64_t claims = 0;   ///< provenanced claims
};

/// Fully validates the snapshot at `path` (magic, version, structure, and
/// every section CRC) and returns its sizes without keeping the store.
Result<SnapshotStats> ReadSnapshotInfo(const std::string& path);

/// CRC32c (Castagnoli), bit-reflected, init/xor-out 0xFFFFFFFF. `seed` is
/// the running value from a previous call, 0 to start. Exposed for tests.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

}  // namespace akb::rdf

#endif  // AKB_RDF_SNAPSHOT_H_

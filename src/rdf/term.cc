#include "rdf/term.h"

#include "common/string_util.h"

namespace akb::rdf {

namespace {

const char kHexDigits[] = "0123456789ABCDEF";

/// Escapes a literal body so the line-based N-Triples reader can always
/// invert it: \" \\ \n \r \t get two-char escapes, every other control
/// character becomes \u00XX. No raw control byte ever reaches the output.
void AppendLiteralEscaped(std::string* out, std::string_view lexical) {
  for (char ch : lexical) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          *out += "\\u00";
          out->push_back(kHexDigits[c >> 4]);
          out->push_back(kHexDigits[c & 0xF]);
        } else {
          out->push_back(ch);
        }
    }
  }
}

/// Percent-encodes the IRI bytes that would break the surrounding line
/// syntax ('<'/'>' delimiters, quotes, whitespace, control bytes) so a
/// written IRI term is always re-parseable. Valid IRIs contain none of
/// these, so well-formed stores round-trip byte-identically.
void AppendIriEscaped(std::string* out, std::string_view iri) {
  for (char ch : iri) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (c <= 0x20 || c == 0x7F || c == '<' || c == '>' || c == '"') {
      out->push_back('%');
      out->push_back(kHexDigits[c >> 4]);
      out->push_back(kHexDigits[c & 0xF]);
    } else {
      out->push_back(ch);
    }
  }
}

}  // namespace

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri: {
      std::string out;
      out.reserve(lexical.size() + 2);
      out.push_back('<');
      AppendIriEscaped(&out, lexical);
      out.push_back('>');
      return out;
    }
    case TermKind::kLiteral: {
      std::string out;
      out.reserve(lexical.size() + 2);
      out.push_back('"');
      AppendLiteralEscaped(&out, lexical);
      out.push_back('"');
      return out;
    }
    case TermKind::kBlank:
      return "_:" + lexical;
  }
  return "";
}

namespace {
std::string Slug(std::string_view s) {
  std::string norm = NormalizeSurface(s);
  for (auto& c : norm) {
    if (c == ' ') c = '_';
  }
  return norm;
}
}  // namespace

std::string EntityIri(std::string_view class_name, std::string_view entity) {
  return "http://akb.local/entity/" + Slug(class_name) + "/" + Slug(entity);
}

std::string AttributeIri(std::string_view class_name,
                         std::string_view attribute) {
  return "http://akb.local/attribute/" + Slug(class_name) + "/" +
         Slug(attribute);
}

std::string ClassIri(std::string_view class_name) {
  return "http://akb.local/class/" + Slug(class_name);
}

}  // namespace akb::rdf

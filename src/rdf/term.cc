#include "rdf/term.h"

#include "common/string_util.h"

namespace akb::rdf {

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kLiteral: {
      std::string escaped;
      escaped.reserve(lexical.size() + 2);
      for (char c : lexical) {
        if (c == '"' || c == '\\') escaped.push_back('\\');
        if (c == '\n') {
          escaped += "\\n";
          continue;
        }
        escaped.push_back(c);
      }
      return "\"" + escaped + "\"";
    }
    case TermKind::kBlank:
      return "_:" + lexical;
  }
  return "";
}

namespace {
std::string Slug(std::string_view s) {
  std::string norm = NormalizeSurface(s);
  for (auto& c : norm) {
    if (c == ' ') c = '_';
  }
  return norm;
}
}  // namespace

std::string EntityIri(std::string_view class_name, std::string_view entity) {
  return "http://akb.local/entity/" + Slug(class_name) + "/" + Slug(entity);
}

std::string AttributeIri(std::string_view class_name,
                         std::string_view attribute) {
  return "http://akb.local/attribute/" + Slug(class_name) + "/" +
         Slug(attribute);
}

std::string ClassIri(std::string_view class_name) {
  return "http://akb.local/class/" + Slug(class_name);
}

}  // namespace akb::rdf

// Read-only memory-mapped file, RAII-managed — the substrate under
// zero-copy (v2) snapshots: the mapping *is* the serve-time data, shared
// across processes through the page cache, so N servers of one KB pay for
// one physical copy and KBs larger than RAM stay servable.
//
// Error taxonomy matches rdf/snapshot.h: kIoError when the filesystem
// fails (missing file, unreadable, mmap refused), kDataLoss when a caller
// asks for a byte range the file does not contain (the typed form of
// "this snapshot is truncated").
//
// Lifetime: the mapping lives exactly as long as the MmapFile. Holders of
// pointers into the mapping (e.g. a borrowed-mode serve::KbView) keep the
// MmapFile alive via shared_ptr. In debug builds the destructor poisons
// the range (PROT_NONE) immediately before unmapping, so a use-after-
// unmap faults deterministically instead of reading recycled pages.
#ifndef AKB_RDF_MMAP_FILE_H_
#define AKB_RDF_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace akb::rdf {

class MmapFile {
 public:
  /// Maps `path` read-only (MAP_SHARED, so the page cache backs every
  /// mapping of the same file with one physical copy). An empty file maps
  /// to a valid object with size() == 0. kIoError on any syscall failure.
  static Result<std::shared_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Bytes [offset, offset + bytes) of the mapping, or kDataLoss when the
  /// range runs past the end of the file — the bounds check every typed
  /// read of a mapped snapshot goes through.
  Result<std::string_view> Range(uint64_t offset, uint64_t bytes) const;

  /// Number of live MmapFile objects in this process. Tests pin that
  /// destroying every view of a mapped snapshot returns this to its
  /// baseline (no leaked mappings); statusz reports it as mmap_active.
  static int64_t active_mappings();

 private:
  MmapFile(std::string path, char* data, size_t size);

  std::string path_;
  char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace akb::rdf

#endif  // AKB_RDF_MMAP_FILE_H_

#include "rdf/ntriples.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace akb::rdf {

namespace {

ExtractorKind ExtractorKindFromString(std::string_view name) {
  if (name == "ground_truth") return ExtractorKind::kGroundTruth;
  if (name == "existing_kb") return ExtractorKind::kExistingKb;
  if (name == "query_stream") return ExtractorKind::kQueryStream;
  if (name == "dom_tree") return ExtractorKind::kDomTree;
  if (name == "web_text") return ExtractorKind::kWebText;
  if (name == "fusion") return ExtractorKind::kFusion;
  return ExtractorKind::kOther;
}

std::string ProvenanceComment(const Provenance& p) {
  return "# source=" + p.source +
         " extractor=" + std::string(ExtractorKindToString(p.extractor)) +
         " confidence=" + FormatDouble(p.confidence, 6);
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Appends a Unicode code point as UTF-8 (the writer only emits \u00XX,
/// but the reader accepts any BMP escape).
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(char(cp));
  } else if (cp < 0x800) {
    out->push_back(char(0xC0 | (cp >> 6)));
    out->push_back(char(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(char(0xE0 | (cp >> 12)));
    out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(char(0x80 | (cp & 0x3F)));
  }
}

/// Decodes one backslash escape at text[*pos] (positioned on the character
/// after the backslash); the exact inverse of Term::ToString's literal
/// escaping. Unknown escapes and malformed \uXXXX are errors, never passed
/// through silently.
Status ConsumeLiteralEscape(std::string_view text, size_t* pos,
                            std::string* out) {
  if (*pos >= text.size()) {
    return Status::ParseError("dangling backslash in literal");
  }
  char e = text[(*pos)++];
  switch (e) {
    case 'n':
      out->push_back('\n');
      return Status::OK();
    case 'r':
      out->push_back('\r');
      return Status::OK();
    case 't':
      out->push_back('\t');
      return Status::OK();
    case '"':
      out->push_back('"');
      return Status::OK();
    case '\\':
      out->push_back('\\');
      return Status::OK();
    case 'u': {
      if (*pos + 4 > text.size()) {
        return Status::ParseError("truncated \\u escape in literal");
      }
      uint32_t cp = 0;
      for (int i = 0; i < 4; ++i) {
        int v = HexValue(text[*pos + size_t(i)]);
        if (v < 0) {
          return Status::ParseError("bad hex digit in \\u escape");
        }
        cp = (cp << 4) | uint32_t(v);
      }
      *pos += 4;
      AppendUtf8(out, cp);
      return Status::OK();
    }
    default:
      return Status::ParseError("invalid escape '\\" + std::string(1, e) +
                                "' in literal");
  }
}

// Consumes one term starting at text[pos]; advances pos past the term.
Result<Term> ConsumeTerm(std::string_view text, size_t* pos) {
  while (*pos < text.size() && (text[*pos] == ' ' || text[*pos] == '\t')) {
    ++*pos;
  }
  if (*pos >= text.size()) return Status::ParseError("expected term");
  char c = text[*pos];
  if (c == '<') {
    size_t end = text.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    Term t = Term::Iri(std::string(text.substr(*pos + 1, end - *pos - 1)));
    *pos = end + 1;
    return t;
  }
  if (c == '"') {
    std::string value;
    size_t i = *pos + 1;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') {
        ++i;
        Status s = ConsumeLiteralEscape(text, &i, &value);
        if (!s.ok()) return s;
      } else {
        value.push_back(text[i]);
        ++i;
      }
    }
    if (i >= text.size()) return Status::ParseError("unterminated literal");
    *pos = i + 1;
    return Term::Literal(std::move(value));
  }
  if (c == '_' && *pos + 1 < text.size() && text[*pos + 1] == ':') {
    size_t i = *pos + 2;
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    Term t = Term::Blank(std::string(text.substr(start, i - start)));
    *pos = i;
    return t;
  }
  return Status::ParseError("unrecognized term start '" + std::string(1, c) +
                            "'");
}

}  // namespace

std::string WriteNTriples(const TripleStore& store,
                          const NTriplesWriteOptions& options) {
  std::string out;
  if (options.include_provenance) {
    for (size_t i = 0; i < store.num_claims(); ++i) {
      const Claim& c = store.claim(i);
      const auto& d = store.dictionary();
      out += d.Lookup(c.triple.subject).ToString() + " " +
             d.Lookup(c.triple.predicate).ToString() + " " +
             d.Lookup(c.triple.object).ToString() + " . " +
             ProvenanceComment(c.provenance) + "\n";
    }
  } else {
    for (size_t i = 0; i < store.num_triples(); ++i) {
      out += store.DecodeToString(i) + "\n";
    }
  }
  return out;
}

Result<Term> ParseTerm(std::string_view text) {
  size_t pos = 0;
  auto result = ConsumeTerm(text, &pos);
  if (!result.ok()) return result;
  if (!Trim(text.substr(pos)).empty()) {
    return Status::ParseError("trailing garbage after term");
  }
  return result;
}

Status WriteNTriplesFile(const TripleStore& store, const std::string& path,
                         const NTriplesWriteOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteNTriples(store, options);
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Status ReadNTriplesFile(const std::string& path, TripleStore* store) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadNTriples(buffer.str(), store);
}

Status ReadNTriples(std::string_view text, TripleStore* store) {
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    ++line_no;
    start = end + 1;
    if (end == text.size() && line.empty()) break;
    if (line.empty() || line[0] == '#') continue;

    size_t pos = 0;
    auto error = [&](const Status& s) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                s.message());
    };
    auto s_term = ConsumeTerm(line, &pos);
    if (!s_term.ok()) return error(s_term.status());
    auto p_term = ConsumeTerm(line, &pos);
    if (!p_term.ok()) return error(p_term.status());
    auto o_term = ConsumeTerm(line, &pos);
    if (!o_term.ok()) return error(o_term.status());

    std::string_view rest = Trim(line.substr(pos));
    if (rest.empty() || rest[0] != '.') {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": missing terminating '.'");
    }
    rest = Trim(rest.substr(1));

    Provenance prov;
    if (!rest.empty() && rest[0] == '#') {
      for (const auto& field : SplitWhitespace(rest.substr(1))) {
        auto eq = field.find('=');
        if (eq == std::string::npos) continue;
        std::string key = field.substr(0, eq);
        std::string value = field.substr(eq + 1);
        if (key == "source") {
          prov.source = value;
        } else if (key == "extractor") {
          prov.extractor = ExtractorKindFromString(value);
        } else if (key == "confidence") {
          double conf = 1.0;
          auto [ptr, ec] =
              std::from_chars(value.data(), value.data() + value.size(), conf);
          (void)ptr;
          if (ec == std::errc()) prov.confidence = conf;
        }
      }
    }
    store->InsertDecoded(*s_term, *p_term, *o_term, std::move(prov));
  }
  return Status::OK();
}

}  // namespace akb::rdf

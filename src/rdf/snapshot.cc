#include "rdf/snapshot.h"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <vector>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "rdf/perm_index.h"
#include "rdf/triple_store.h"

namespace akb::rdf {

// The v2 reader hands out typed pointers straight into the mapping and the
// writer memcpys arrays, so the in-memory layout must match the (little-
// endian) wire layout exactly.
static_assert(std::endian::native == std::endian::little,
              "v2 snapshots assume a little-endian host");
static_assert(sizeof(Triple) == 12 && std::is_trivially_copyable_v<Triple>,
              "v2 snapshots store raw Triple arrays");

namespace {

constexpr char kMagicV1[8] = {'A', 'K', 'B', 'S', 'N', 'A', 'P', '1'};
constexpr uint8_t kSectionTerms = 1;
constexpr uint8_t kSectionTriples = 2;
constexpr uint8_t kSectionClaims = 3;
constexpr uint8_t kEndMarker = 0xFF;
/// Writer flushes blocks around this size; bigger records get a block of
/// their own.
constexpr size_t kBlockTarget = 64 * 1024;
/// Reader refuses blocks beyond this, so a corrupted length varint cannot
/// trigger a giant allocation.
constexpr uint64_t kMaxBlockLen = 16ull * 1024 * 1024;

// ------------------------------------------------------------ primitives

void WriteU32(std::ostream& out, uint32_t v) {
  char bytes[4] = {char(v & 0xFF), char((v >> 8) & 0xFF),
                   char((v >> 16) & 0xFF), char((v >> 24) & 0xFF)};
  out.write(bytes, 4);
}

bool ReadU32(std::istream& in, uint32_t* out) {
  unsigned char bytes[4];
  if (!in.read(reinterpret_cast<char*>(bytes), 4)) return false;
  *out = uint32_t(bytes[0]) | uint32_t(bytes[1]) << 8 |
         uint32_t(bytes[2]) << 16 | uint32_t(bytes[3]) << 24;
  return true;
}

void WriteStreamVarint(std::ostream& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(char((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(char(v));
}

bool ReadStreamVarint(std::istream& in, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    int c = in.get();
    if (c == std::char_traits<char>::eof()) return false;
    v |= uint64_t(c & 0x7F) << shift;
    if (!(c & 0x80)) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;  // overlong varint
}

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(char((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(char(v));
}

Status ParseVarint(std::string_view block, size_t* pos, uint64_t* out,
                   const char* what) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (*pos >= block.size()) {
      return Status::DataLoss(std::string("record overruns block in ") + what);
    }
    unsigned char c = static_cast<unsigned char>(block[(*pos)++]);
    v |= uint64_t(c & 0x7F) << shift;
    if (!(c & 0x80)) {
      *out = v;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::DataLoss(std::string("overlong varint in ") + what);
}

Status ParseByte(std::string_view block, size_t* pos, uint8_t* out,
                 const char* what) {
  if (*pos >= block.size()) {
    return Status::DataLoss(std::string("record overruns block in ") + what);
  }
  *out = static_cast<uint8_t>(block[(*pos)++]);
  return Status::OK();
}

Status ParseBytes(std::string_view block, size_t* pos, uint64_t len,
                  std::string_view* out, const char* what) {
  if (len > block.size() - *pos) {
    return Status::DataLoss(std::string("record overruns block in ") + what);
  }
  *out = block.substr(*pos, len);
  *pos += len;
  return Status::OK();
}

Status ParseU64(std::string_view block, size_t* pos, uint64_t* out,
                const char* what) {
  std::string_view bytes;
  AKB_RETURN_IF_ERROR(ParseBytes(block, pos, 8, &bytes, what));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[size_t(i)]);
  }
  *out = v;
  return Status::OK();
}

// --------------------------------------------------------- section writer

/// Streams one v1 section: records accumulate in a single block buffer
/// which flushes at kBlockTarget, feeding the running CRC; End() writes
/// the block terminator and the section CRC.
class SectionWriter {
 public:
  explicit SectionWriter(std::ostream* out) : out_(out) {}

  void Begin(uint8_t id, uint64_t record_count) {
    out_->put(char(id));
    WriteStreamVarint(*out_, record_count);
    crc_ = 0;
    buffer_.clear();
  }

  void Add(std::string_view record) {
    if (record.size() > kMaxBlockLen) {
      oversized_record_ = true;
      return;
    }
    if (!buffer_.empty() && buffer_.size() + record.size() > kBlockTarget) {
      Flush();
    }
    buffer_.append(record);
  }

  void End() {
    if (!buffer_.empty()) Flush();
    WriteStreamVarint(*out_, 0);
    WriteU32(*out_, crc_);
  }

  bool oversized_record() const { return oversized_record_; }

 private:
  void Flush() {
    WriteStreamVarint(*out_, buffer_.size());
    out_->write(buffer_.data(), std::streamsize(buffer_.size()));
    crc_ = Crc32c(buffer_, crc_);
    buffer_.clear();
  }

  std::ostream* out_;
  std::string buffer_;
  uint32_t crc_ = 0;
  bool oversized_record_ = false;
};

// --------------------------------------------------------- section reader

/// Streams one v1 section through `parse_record(block, &pos)`, which
/// consumes exactly one record; records never span blocks, so each block
/// parses to completion. Validates the declared record count and the
/// section CRC.
template <typename RecordFn>
Status ReadSection(std::istream& in, uint8_t expected_id, const char* name,
                   RecordFn parse_record) {
  int id = in.get();
  if (id == std::char_traits<char>::eof()) {
    return Status::DataLoss(std::string("truncated before section ") + name);
  }
  if (uint8_t(id) != expected_id) {
    return Status::DataLoss(std::string("expected section ") + name);
  }
  uint64_t declared = 0;
  if (!ReadStreamVarint(in, &declared)) {
    return Status::DataLoss(std::string("truncated record count in ") + name);
  }
  uint64_t parsed = 0;
  uint32_t crc = 0;
  std::string block;
  for (;;) {
    uint64_t len = 0;
    if (!ReadStreamVarint(in, &len)) {
      return Status::DataLoss(std::string("truncated block length in ") +
                              name);
    }
    if (len == 0) break;
    if (len > kMaxBlockLen) {
      return Status::DataLoss(std::string("oversized block in ") + name);
    }
    block.resize(size_t(len));
    if (!in.read(block.data(), std::streamsize(len))) {
      return Status::DataLoss(std::string("truncated block in ") + name);
    }
    crc = Crc32c(block, crc);
    size_t pos = 0;
    while (pos < block.size()) {
      if (parsed >= declared) {
        return Status::DataLoss(std::string("more records than declared in ") +
                                name);
      }
      AKB_RETURN_IF_ERROR(parse_record(std::string_view(block), &pos));
      ++parsed;
    }
  }
  if (parsed != declared) {
    return Status::DataLoss(std::string("fewer records than declared in ") +
                            name);
  }
  uint32_t stored_crc = 0;
  if (!ReadU32(in, &stored_crc)) {
    return Status::DataLoss(std::string("truncated CRC in ") + name);
  }
  if (stored_crc != crc) {
    return Status::DataLoss(std::string("CRC mismatch in section ") + name);
  }
  return Status::OK();
}

// -------------------------------------------------------------- CRC32c

/// Table-driven byte loop over the pre-xored running state.
uint32_t Crc32cSoftware(std::string_view data, uint32_t crc) {
  static const std::array<uint32_t, 256>& table = *[] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
      }
      (*t)[i] = c;
    }
    return t;
  }();
  for (unsigned char b : data) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__)
/// The SSE4.2 crc32 instruction computes exactly the reflected Castagnoli
/// update the table loop does, 8 bytes per instruction — the difference
/// between ~0.4 GB/s and ~15 GB/s, which is what keeps whole-file CRC
/// validation negligible next to a v1 parse.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    std::string_view data, uint32_t crc) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint64_t state = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    state = _mm_crc32_u64(state, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t state32 = uint32_t(state);
  while (n > 0) {
    state32 = _mm_crc32_u8(state32, *p++);
    --n;
  }
  return state32;
}
#endif

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  uint32_t crc = seed ^ 0xFFFFFFFFu;
#if defined(__x86_64__)
  static const bool have_sse42 = __builtin_cpu_supports("sse4.2");
  if (have_sse42) {
    crc = Crc32cHardware(data, crc);
  } else {
    crc = Crc32cSoftware(data, crc);
  }
#else
  crc = Crc32cSoftware(data, crc);
#endif
  return crc ^ 0xFFFFFFFFu;
}

// ----------------------------------------------------------- v2 helpers

namespace {

namespace v2 = snapshot_v2;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

uint64_t AlignUp(uint64_t n, uint64_t align) {
  return (n + align - 1) / align * align;
}

const char* V2SectionName(uint32_t id) {
  switch (id) {
    case v2::kTermOffsets: return "term-offsets";
    case v2::kTermKinds: return "term-kinds";
    case v2::kTermBytes: return "term-bytes";
    case v2::kTriples: return "triples";
    case v2::kSpoOrder: return "spo-order";
    case v2::kSpoKeys: return "spo-keys";
    case v2::kPosOrder: return "pos-order";
    case v2::kPosKeys: return "pos-keys";
    case v2::kOspOrder: return "osp-order";
    case v2::kOspKeys: return "osp-keys";
    case v2::kClaims: return "claims";
  }
  return "?";
}

/// Writes the v2 byte stream while tracking the running offset, the
/// whole-file CRC, and the footer entry of each section. Sections are
/// opened with Begin (which pads to the alignment boundary), fed with
/// Append, and closed with End.
class V2Writer {
 public:
  explicit V2Writer(std::ostream* out) : out_(out) {}

  void WriteRaw(const char* data, uint64_t n) {
    out_->write(data, std::streamsize(n));
    file_crc_ = Crc32c(std::string_view(data, size_t(n)), file_crc_);
    offset_ += n;
  }

  void PadTo(uint64_t align) {
    static const std::string zeros(size_t(v2::kSectionAlign), '\0');
    uint64_t pad = AlignUp(offset_, align) - offset_;
    if (pad > 0) WriteRaw(zeros.data(), pad);
  }

  void Begin(uint32_t id, uint64_t count) {
    PadTo(v2::kSectionAlign);
    current_ = Entry{id, offset_, 0, count, 0};
  }

  void Append(const char* data, uint64_t n) {
    current_.crc =
        Crc32c(std::string_view(data, size_t(n)), current_.crc);
    current_.bytes += n;
    WriteRaw(data, n);
  }

  void End() { entries_.push_back(current_); }

  void WriteSection(uint32_t id, const void* data, uint64_t bytes,
                    uint64_t count) {
    Begin(id, count);
    Append(static_cast<const char*>(data), bytes);
    End();
  }

  uint64_t offset() const { return offset_; }
  uint32_t file_crc() const { return file_crc_; }

  struct Entry {
    uint32_t id = 0;
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint64_t count = 0;
    uint32_t crc = 0;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::ostream* out_;
  uint64_t offset_ = 0;
  uint32_t file_crc_ = 0;
  Entry current_;
  std::vector<Entry> entries_;
};

}  // namespace

Result<SnapshotFormat> ProbeSnapshotFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  char magic[8];
  if (in.read(magic, sizeof(magic))) {
    if (std::memcmp(magic, kMagicV1, 8) == 0) return SnapshotFormat::kV1;
    if (std::memcmp(magic, v2::kMagic, 8) == 0) return SnapshotFormat::kV2;
  }
  return Status::ParseError("'" + path + "' is not an akb snapshot");
}

// ------------------------------------------------------------ v2 reader

Result<SnapshotV2View> OpenSnapshotV2(const std::string& path) {
  AKB_ASSIGN_OR_RETURN(std::shared_ptr<MmapFile> mapping,
                       MmapFile::Open(path));
  const char* base = mapping->data();
  const uint64_t size = mapping->size();

  if (size < 8 || std::memcmp(base, v2::kMagic, 8) != 0) {
    return Status::ParseError("'" + path + "' is not a v2 akb snapshot");
  }
  const uint64_t min_size = v2::kHeaderBytes +
                            v2::kNumSections * v2::kSectionEntryBytes +
                            v2::kTrailerBytes;
  if (size < min_size) {
    return Status::DataLoss("'" + path + "': truncated v2 snapshot (" +
                            std::to_string(size) + " bytes)");
  }
  const uint32_t version = LoadU32(base + 8);
  if (version > kSnapshotVersionV2) {
    return Status::Unimplemented(
        "snapshot format version " + std::to_string(version) +
        " is not supported (this build reads up to version " +
        std::to_string(kSnapshotVersionV2) + ")");
  }
  if (version != kSnapshotVersionV2) {
    return Status::DataLoss("v2 snapshot header carries version " +
                            std::to_string(version));
  }
  if (LoadU32(base + 12) != Crc32c(std::string_view(base, 12))) {
    return Status::DataLoss("v2 header CRC mismatch");
  }

  // Trailer: every field is either checked against the file or covered by
  // the trailer magic / footer CRC, so trailer corruption is always typed.
  const char* tr = base + size - v2::kTrailerBytes;
  if (std::memcmp(tr + 64, v2::kTrailerMagic, 8) != 0) {
    return Status::DataLoss("bad v2 trailer magic");
  }
  const uint64_t footer_offset = LoadU64(tr);
  const uint64_t footer_bytes = LoadU64(tr + 8);
  const uint32_t footer_crc = LoadU32(tr + 16);
  const uint32_t section_count = LoadU32(tr + 20);
  const uint64_t num_terms = LoadU64(tr + 24);
  const uint64_t num_triples = LoadU64(tr + 32);
  const uint64_t num_claims = LoadU64(tr + 40);
  const uint64_t file_bytes = LoadU64(tr + 48);
  const uint32_t file_crc = LoadU32(tr + 56);
  const uint32_t reserved = LoadU32(tr + 60);

  if (file_bytes != size) {
    return Status::DataLoss("v2 trailer claims " + std::to_string(file_bytes) +
                            " bytes but the file has " + std::to_string(size));
  }
  if (reserved != 0) {
    return Status::DataLoss("nonzero reserved field in v2 trailer");
  }
  if (section_count != v2::kNumSections ||
      footer_bytes != uint64_t(v2::kNumSections) * v2::kSectionEntryBytes) {
    return Status::DataLoss("unexpected v2 section count");
  }
  if (footer_offset % v2::kSectionAlign != 0 ||
      footer_offset < v2::kHeaderBytes ||
      footer_offset + footer_bytes != size - v2::kTrailerBytes) {
    return Status::DataLoss("v2 footer location out of place");
  }
  const std::string_view footer(base + footer_offset, size_t(footer_bytes));
  if (Crc32c(footer) != footer_crc) {
    return Status::DataLoss("v2 footer CRC mismatch");
  }
  if (Crc32c(std::string_view(base, size_t(footer_offset + footer_bytes))) !=
      file_crc) {
    return Status::DataLoss("v2 file CRC mismatch");
  }
  if (num_triples > UINT32_MAX) {
    return Status::DataLoss("v2 snapshot claims more than 2^32 triples");
  }

  // Footer entries: ids in order, reserved zero, offsets aligned and
  // exactly abutting (up to alignment padding), sizes consistent with the
  // trailer counts, every section CRC good.
  V2Writer::Entry secs[v2::kNumSections];
  uint64_t prev_end = v2::kHeaderBytes;
  for (uint32_t i = 0; i < v2::kNumSections; ++i) {
    const char* e = base + footer_offset + i * v2::kSectionEntryBytes;
    V2Writer::Entry& s = secs[i];
    s.id = LoadU32(e);
    const uint32_t reserved0 = LoadU32(e + 4);
    s.offset = LoadU64(e + 8);
    s.bytes = LoadU64(e + 16);
    s.count = LoadU64(e + 24);
    s.crc = LoadU32(e + 32);
    const uint32_t reserved1 = LoadU32(e + 36);
    if (s.id != i + 1) {
      return Status::DataLoss("v2 section ids out of order");
    }
    const char* name = V2SectionName(s.id);
    if (reserved0 != 0 || reserved1 != 0) {
      return Status::DataLoss(
          std::string("nonzero reserved field in v2 footer entry for ") +
          name);
    }
    if (s.offset != AlignUp(prev_end, v2::kSectionAlign)) {
      return Status::DataLoss(std::string("misaligned v2 section ") + name);
    }
    if (s.offset > footer_offset || s.bytes > footer_offset - s.offset) {
      return Status::DataLoss(std::string("v2 section ") + name +
                              " runs past the footer");
    }
    uint64_t expect_bytes = 0;
    uint64_t expect_count = 0;
    switch (s.id) {
      case v2::kTermOffsets:
        expect_count = num_terms + 1;
        expect_bytes = expect_count * 8;
        break;
      case v2::kTermKinds:
        expect_count = num_terms;
        expect_bytes = expect_count;
        break;
      case v2::kTermBytes:
        expect_count = s.bytes;  // count mirrors the byte length
        expect_bytes = s.bytes;
        break;
      case v2::kTriples:
        expect_count = num_triples;
        expect_bytes = expect_count * sizeof(Triple);
        break;
      case v2::kSpoOrder:
      case v2::kPosOrder:
      case v2::kOspOrder:
        expect_count = num_triples;
        expect_bytes = expect_count * 4;
        break;
      case v2::kSpoKeys:
      case v2::kPosKeys:
      case v2::kOspKeys:
        expect_count = num_triples;
        expect_bytes = expect_count * 8;
        break;
      case v2::kClaims:
        expect_count = num_claims;
        expect_bytes = s.bytes;  // varint blob, length is free-form
        break;
    }
    if (s.bytes != expect_bytes || s.count != expect_count) {
      return Status::DataLoss(std::string("v2 section ") + name +
                              " size disagrees with the trailer counts");
    }
    if (Crc32c(std::string_view(base + s.offset, size_t(s.bytes))) != s.crc) {
      return Status::DataLoss(std::string("CRC mismatch in v2 section ") +
                              name);
    }
    prev_end = s.offset + s.bytes;
  }
  if (footer_offset != AlignUp(prev_end, v2::kSectionAlign)) {
    return Status::DataLoss("unexpected gap between v2 sections and footer");
  }

  // Typed pointers — alignment is guaranteed by the 4 KiB section starts.
  SnapshotV2View view;
  view.num_terms = num_terms;
  view.num_triples = num_triples;
  view.num_claims = num_claims;
  view.term_offsets =
      reinterpret_cast<const uint64_t*>(base + secs[0].offset);
  view.term_kinds = reinterpret_cast<const uint8_t*>(base + secs[1].offset);
  view.term_bytes = base + secs[2].offset;
  view.triples = reinterpret_cast<const Triple*>(base + secs[3].offset);
  for (int p = 0; p < 3; ++p) {
    view.order[p] =
        reinterpret_cast<const uint32_t*>(base + secs[4 + 2 * p].offset);
    view.keys[p] =
        reinterpret_cast<const uint64_t*>(base + secs[5 + 2 * p].offset);
  }
  view.claims = std::string_view(base + secs[10].offset, size_t(secs[10].bytes));

  // Content invariants of the typed sections, so serve-side binary search
  // and decode can trust the bytes without further checks.
  if (view.term_offsets[0] != 0 ||
      view.term_offsets[num_terms] != secs[2].bytes) {
    return Status::DataLoss("v2 term offset table does not span the arena");
  }
  for (uint64_t i = 0; i < num_terms; ++i) {
    if (view.term_offsets[i] > view.term_offsets[i + 1]) {
      return Status::DataLoss("v2 term offset table is not monotone");
    }
    if (view.term_kinds[i] > uint8_t(TermKind::kBlank)) {
      return Status::DataLoss("term kind out of range");
    }
  }
  for (uint64_t i = 0; i < num_triples; ++i) {
    const Triple& t = view.triples[i];
    if (t.subject < 1 || t.subject > num_terms || t.predicate < 1 ||
        t.predicate > num_terms || t.object < 1 || t.object > num_terms) {
      return Status::DataLoss("term id out of range in v2 triples");
    }
  }
  for (int p = 0; p < 3; ++p) {
    const Permutation perm = Permutation(p);
    std::array<TermId, 3> prev_key = {0, 0, 0};
    for (uint64_t i = 0; i < num_triples; ++i) {
      const uint32_t ti = view.order[p][i];
      if (ti >= num_triples) {
        return Status::DataLoss("v2 index entry out of range");
      }
      const std::array<TermId, 3> key =
          PermutationKey(view.triples[ti], perm);
      if (view.keys[p][i] != (uint64_t(key[0]) << 32 | key[1])) {
        return Status::DataLoss("v2 index key disagrees with its triple");
      }
      if (i > 0 && !(prev_key < key)) {
        // Equality would mean a duplicate triple; order would mean an
        // unsorted index — either way binary search is unsound.
        return Status::DataLoss("v2 index is not strictly sorted");
      }
      prev_key = key;
    }
  }

  view.stats.version = kSnapshotVersionV2;
  view.stats.bytes = size;
  view.stats.terms = num_terms;
  view.stats.triples = num_triples;
  view.stats.claims = num_claims;
  view.stats.dict_bytes = secs[0].bytes + secs[1].bytes + secs[2].bytes;
  view.stats.triples_bytes = secs[3].bytes;
  for (int i = 4; i <= 9; ++i) view.stats.index_bytes += secs[i].bytes;
  view.stats.claims_bytes = secs[10].bytes;
  view.mapping = std::move(mapping);
  return view;
}

// ------------------------------------------------------------ v1 writer

Status TripleStore::SaveSnapshot(const std::string& path,
                                 SnapshotStats* stats) const {
  return SaveSnapshot(path, SnapshotFormat::kV1, stats);
}

Status TripleStore::SaveSnapshot(const std::string& path,
                                 SnapshotFormat format,
                                 SnapshotStats* stats) const {
  switch (format) {
    case SnapshotFormat::kV1:
      return SaveSnapshotV1(path, stats);
    case SnapshotFormat::kV2:
      return SaveSnapshotV2(path, stats);
  }
  return Status::InvalidArgument("unknown snapshot format");
}

Status TripleStore::SaveSnapshotV1(const std::string& path,
                                   SnapshotStats* stats) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out.write(kMagicV1, sizeof(kMagicV1));
  WriteU32(out, kSnapshotVersion);

  SectionWriter section(&out);
  std::string record;

  uint64_t terms_start = uint64_t(out.tellp());
  section.Begin(kSectionTerms, dict_.size());
  for (TermId id = 1; id <= dict_.size(); ++id) {
    const Term& term = dict_.Lookup(id);
    record.clear();
    record.push_back(char(term.kind));
    AppendVarint(&record, term.lexical.size());
    record += term.lexical;
    section.Add(record);
  }
  section.End();

  uint64_t triples_start = uint64_t(out.tellp());
  section.Begin(kSectionTriples, triples_.size());
  for (const Triple& t : triples_) {
    record.clear();
    AppendVarint(&record, t.subject);
    AppendVarint(&record, t.predicate);
    AppendVarint(&record, t.object);
    section.Add(record);
  }
  section.End();

  uint64_t claims_start = uint64_t(out.tellp());
  section.Begin(kSectionClaims, claims_.size());
  for (const Claim& c : claims_) {
    record.clear();
    AppendVarint(&record, c.triple.subject);
    AppendVarint(&record, c.triple.predicate);
    AppendVarint(&record, c.triple.object);
    record.push_back(char(c.provenance.extractor));
    uint64_t bits = std::bit_cast<uint64_t>(c.provenance.confidence);
    for (int i = 0; i < 8; ++i) record.push_back(char((bits >> (8 * i)) & 0xFF));
    AppendVarint(&record, c.provenance.source.size());
    record += c.provenance.source;
    section.Add(record);
  }
  section.End();
  uint64_t claims_end = uint64_t(out.tellp());

  if (section.oversized_record()) {
    return Status::InvalidArgument(
        "store contains a term or source larger than the 16 MiB record "
        "limit");
  }
  out.put(char(kEndMarker));
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  if (stats != nullptr) {
    *stats = SnapshotStats{};
    stats->version = kSnapshotVersion;
    stats->bytes = uint64_t(out.tellp());
    stats->terms = dict_.size();
    stats->triples = triples_.size();
    stats->claims = claims_.size();
    stats->dict_bytes = triples_start - terms_start;
    stats->triples_bytes = claims_start - triples_start;
    stats->claims_bytes = claims_end - claims_start;
  }
  return Status::OK();
}

// ------------------------------------------------------------ v2 writer

Status TripleStore::SaveSnapshotV2(const std::string& path,
                                   SnapshotStats* stats) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }

  // Header page.
  std::string header(size_t(v2::kHeaderBytes), '\0');
  std::memcpy(header.data(), v2::kMagic, 8);
  uint32_t version = kSnapshotVersionV2;
  std::memcpy(header.data() + 8, &version, 4);
  uint32_t header_crc = Crc32c(std::string_view(header.data(), 12));
  std::memcpy(header.data() + 12, &header_crc, 4);

  V2Writer writer(&out);
  writer.WriteRaw(header.data(), header.size());

  // Dictionary arena: offsets, kinds, contiguous bytes — id order, so
  // TermIds stay implicit exactly as in v1.
  const uint64_t n_terms = dict_.size();
  std::vector<uint64_t> offsets(size_t(n_terms) + 1, 0);
  std::vector<uint8_t> kinds(size_t(n_terms), 0);
  std::string arena;
  {
    uint64_t total = 0;
    for (TermId id = 1; id <= n_terms; ++id) {
      total += dict_.Lookup(id).lexical.size();
    }
    arena.reserve(size_t(total));
  }
  for (TermId id = 1; id <= n_terms; ++id) {
    const Term& term = dict_.Lookup(id);
    offsets[id - 1] = arena.size();
    kinds[id - 1] = uint8_t(term.kind);
    arena += term.lexical;
  }
  offsets[size_t(n_terms)] = arena.size();
  writer.WriteSection(v2::kTermOffsets, offsets.data(), offsets.size() * 8,
                      offsets.size());
  writer.WriteSection(v2::kTermKinds, kinds.data(), kinds.size(),
                      kinds.size());
  writer.WriteSection(v2::kTermBytes, arena.data(), arena.size(),
                      arena.size());

  // Triple array, store order.
  writer.WriteSection(v2::kTriples, triples_.data(),
                      triples_.size() * sizeof(Triple), triples_.size());

  // Permutation indexes — built by the same code the in-memory serve view
  // uses, so the mapped and the built structures are byte-identical.
  constexpr uint32_t kOrderIds[3] = {v2::kSpoOrder, v2::kPosOrder,
                                     v2::kOspOrder};
  constexpr uint32_t kKeyIds[3] = {v2::kSpoKeys, v2::kPosKeys, v2::kOspKeys};
  for (int p = 0; p < 3; ++p) {
    PermIndexData index =
        BuildPermIndex(triples_.data(), triples_.size(), Permutation(p));
    writer.WriteSection(kOrderIds[p], index.order.data(),
                        index.order.size() * 4, index.order.size());
    writer.WriteSection(kKeyIds[p], index.keys.data(), index.keys.size() * 8,
                        index.keys.size());
  }

  // Claims blob: v1 record layout, streamed in bounded chunks.
  writer.Begin(v2::kClaims, claims_.size());
  {
    constexpr size_t kChunkTarget = 4 * 1024 * 1024;
    std::string chunk;
    for (const Claim& c : claims_) {
      AppendVarint(&chunk, c.triple.subject);
      AppendVarint(&chunk, c.triple.predicate);
      AppendVarint(&chunk, c.triple.object);
      chunk.push_back(char(c.provenance.extractor));
      uint64_t bits = std::bit_cast<uint64_t>(c.provenance.confidence);
      for (int i = 0; i < 8; ++i) chunk.push_back(char((bits >> (8 * i)) & 0xFF));
      AppendVarint(&chunk, c.provenance.source.size());
      chunk += c.provenance.source;
      if (chunk.size() >= kChunkTarget) {
        writer.Append(chunk.data(), chunk.size());
        chunk.clear();
      }
    }
    if (!chunk.empty()) writer.Append(chunk.data(), chunk.size());
  }
  writer.End();

  // Footer + trailer.
  writer.PadTo(v2::kSectionAlign);
  const uint64_t footer_offset = writer.offset();
  std::string footer;
  footer.reserve(size_t(v2::kNumSections * v2::kSectionEntryBytes));
  for (const V2Writer::Entry& e : writer.entries()) {
    AppendU32(&footer, e.id);
    AppendU32(&footer, 0);
    AppendU64(&footer, e.offset);
    AppendU64(&footer, e.bytes);
    AppendU64(&footer, e.count);
    AppendU32(&footer, e.crc);
    AppendU32(&footer, 0);
  }
  const uint32_t footer_crc = Crc32c(footer);
  writer.WriteRaw(footer.data(), footer.size());

  std::string trailer;
  trailer.reserve(size_t(v2::kTrailerBytes));
  AppendU64(&trailer, footer_offset);
  AppendU64(&trailer, footer.size());
  AppendU32(&trailer, footer_crc);
  AppendU32(&trailer, v2::kNumSections);
  AppendU64(&trailer, n_terms);
  AppendU64(&trailer, triples_.size());
  AppendU64(&trailer, claims_.size());
  AppendU64(&trailer, writer.offset() + v2::kTrailerBytes);
  AppendU32(&trailer, writer.file_crc());
  AppendU32(&trailer, 0);
  trailer.append(v2::kTrailerMagic, 8);
  out.write(trailer.data(), std::streamsize(trailer.size()));

  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  if (stats != nullptr) {
    *stats = SnapshotStats{};
    stats->version = kSnapshotVersionV2;
    stats->bytes = footer_offset + uint64_t(footer.size()) + v2::kTrailerBytes;
    stats->terms = n_terms;
    stats->triples = triples_.size();
    stats->claims = claims_.size();
    const auto& secs = writer.entries();
    stats->dict_bytes = secs[0].bytes + secs[1].bytes + secs[2].bytes;
    stats->triples_bytes = secs[3].bytes;
    for (int i = 4; i <= 9; ++i) stats->index_bytes += secs[i].bytes;
    stats->claims_bytes = secs[10].bytes;
  }
  return Status::OK();
}

// ------------------------------------------------------------ load paths

Status TripleStore::LoadSnapshot(const std::string& path,
                                 SnapshotStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  in.seekg(0, std::ios::end);
  uint64_t file_bytes = uint64_t(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[8];
  if (!in.read(magic, sizeof(magic))) {
    return Status::ParseError("'" + path + "' is not an akb snapshot");
  }
  if (std::memcmp(magic, kMagicV1, 8) == 0) {
    return LoadSnapshotV1(in, file_bytes, stats);
  }
  if (std::memcmp(magic, v2::kMagic, 8) == 0) {
    in.close();
    return LoadSnapshotV2(path, stats);
  }
  return Status::ParseError("'" + path + "' is not an akb snapshot");
}

Status TripleStore::LoadSnapshotV1(std::istream& in, uint64_t file_bytes,
                                   SnapshotStats* stats) {
  uint32_t version = 0;
  if (!ReadU32(in, &version)) {
    return Status::DataLoss("truncated snapshot version");
  }
  if (version == 0 || version > kSnapshotVersion) {
    return Status::Unimplemented(
        "snapshot format version " + std::to_string(version) +
        " is not supported (this build reads up to version " +
        std::to_string(kSnapshotVersion) + ")");
  }

  // Build into a fresh store; *this is replaced only after every section
  // validates, so a corrupt snapshot can never leave a partial store.
  TripleStore loaded;

  uint64_t terms_start = uint64_t(in.tellg());
  AKB_RETURN_IF_ERROR(ReadSection(
      in, kSectionTerms, "terms",
      [&](std::string_view block, size_t* pos) -> Status {
        uint8_t kind = 0;
        AKB_RETURN_IF_ERROR(ParseByte(block, pos, &kind, "terms"));
        if (kind > uint8_t(TermKind::kBlank)) {
          return Status::DataLoss("term kind out of range");
        }
        uint64_t len = 0;
        AKB_RETURN_IF_ERROR(ParseVarint(block, pos, &len, "terms"));
        std::string_view lexical;
        AKB_RETURN_IF_ERROR(ParseBytes(block, pos, len, &lexical, "terms"));
        Term term{TermKind(kind), std::string(lexical)};
        TermId id = loaded.dict_.Intern(term);
        if (id != loaded.dict_.size()) {
          return Status::DataLoss("duplicate term in dictionary section");
        }
        return Status::OK();
      }));

  auto parse_term_id = [&](std::string_view block, size_t* pos, TermId* out,
                           const char* name) -> Status {
    uint64_t id = 0;
    AKB_RETURN_IF_ERROR(ParseVarint(block, pos, &id, name));
    if (id < 1 || id > loaded.dict_.size()) {
      return Status::DataLoss(std::string("term id out of range in ") + name);
    }
    *out = TermId(id);
    return Status::OK();
  };

  uint64_t triples_start = uint64_t(in.tellg());
  AKB_RETURN_IF_ERROR(ReadSection(
      in, kSectionTriples, "triples",
      [&](std::string_view block, size_t* pos) -> Status {
        Triple t;
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.subject, "triples"));
        AKB_RETURN_IF_ERROR(
            parse_term_id(block, pos, &t.predicate, "triples"));
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.object, "triples"));
        if (loaded.triple_index_.count(t) > 0) {
          return Status::DataLoss("duplicate distinct triple");
        }
        size_t ti = loaded.triples_.size();
        loaded.triples_.push_back(t);
        loaded.claims_of_.emplace_back();
        loaded.triple_index_.emplace(t, ti);
        loaded.by_subject_[t.subject].push_back(ti);
        loaded.by_predicate_[t.predicate].push_back(ti);
        loaded.by_object_[t.object].push_back(ti);
        return Status::OK();
      }));

  uint64_t claims_start = uint64_t(in.tellg());
  AKB_RETURN_IF_ERROR(ReadSection(
      in, kSectionClaims, "claims",
      [&](std::string_view block, size_t* pos) -> Status {
        Triple t;
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.subject, "claims"));
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.predicate, "claims"));
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.object, "claims"));
        uint8_t extractor = 0;
        AKB_RETURN_IF_ERROR(ParseByte(block, pos, &extractor, "claims"));
        if (extractor > uint8_t(ExtractorKind::kOther)) {
          return Status::DataLoss("extractor kind out of range");
        }
        uint64_t bits = 0;
        AKB_RETURN_IF_ERROR(ParseU64(block, pos, &bits, "claims"));
        double confidence = std::bit_cast<double>(bits);
        if (!std::isfinite(confidence)) {
          return Status::DataLoss("non-finite claim confidence");
        }
        uint64_t len = 0;
        AKB_RETURN_IF_ERROR(ParseVarint(block, pos, &len, "claims"));
        std::string_view source;
        AKB_RETURN_IF_ERROR(ParseBytes(block, pos, len, &source, "claims"));
        auto it = loaded.triple_index_.find(t);
        if (it == loaded.triple_index_.end()) {
          return Status::DataLoss("claim references a triple absent from "
                                  "the triples section");
        }
        loaded.claims_of_[it->second].push_back(loaded.claims_.size());
        loaded.claims_.push_back(
            Claim{t, Provenance{std::string(source), ExtractorKind(extractor),
                                confidence}});
        return Status::OK();
      }));
  uint64_t claims_end = uint64_t(in.tellg());

  int end = in.get();
  if (end == std::char_traits<char>::eof()) {
    return Status::DataLoss("truncated before end marker");
  }
  if (uint8_t(end) != kEndMarker) {
    return Status::DataLoss("bad end marker");
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::DataLoss("trailing bytes after end marker");
  }

  if (stats != nullptr) {
    *stats = SnapshotStats{};
    stats->version = version;
    stats->bytes = file_bytes;
    stats->terms = loaded.dict_.size();
    stats->triples = loaded.triples_.size();
    stats->claims = loaded.claims_.size();
    stats->dict_bytes = triples_start - terms_start;
    stats->triples_bytes = claims_start - triples_start;
    stats->claims_bytes = claims_end - claims_start;
  }
  *this = std::move(loaded);
  return Status::OK();
}

Status TripleStore::LoadSnapshotV2(const std::string& path,
                                   SnapshotStats* stats) {
  AKB_ASSIGN_OR_RETURN(SnapshotV2View v, OpenSnapshotV2(path));

  TripleStore loaded;
  for (uint64_t i = 0; i < v.num_terms; ++i) {
    Term term{TermKind(v.term_kinds[i]),
              std::string(v.term_bytes + v.term_offsets[i],
                          size_t(v.term_offsets[i + 1] - v.term_offsets[i]))};
    TermId id = loaded.dict_.Intern(term);
    if (id != i + 1) {
      return Status::DataLoss("duplicate term in v2 dictionary arena");
    }
  }
  for (uint64_t i = 0; i < v.num_triples; ++i) {
    // Distinctness and id ranges were validated against the sorted indexes
    // by OpenSnapshotV2.
    const Triple& t = v.triples[i];
    size_t ti = loaded.triples_.size();
    loaded.triples_.push_back(t);
    loaded.claims_of_.emplace_back();
    loaded.triple_index_.emplace(t, ti);
    loaded.by_subject_[t.subject].push_back(ti);
    loaded.by_predicate_[t.predicate].push_back(ti);
    loaded.by_object_[t.object].push_back(ti);
  }

  // The claims blob is CRC-clean; parse it with the v1 record grammar.
  const std::string_view block = v.claims;
  size_t pos = 0;
  auto parse_term_id = [&](size_t* p, TermId* out) -> Status {
    uint64_t id = 0;
    AKB_RETURN_IF_ERROR(ParseVarint(block, p, &id, "claims"));
    if (id < 1 || id > v.num_terms) {
      return Status::DataLoss("term id out of range in claims");
    }
    *out = TermId(id);
    return Status::OK();
  };
  for (uint64_t i = 0; i < v.num_claims; ++i) {
    Triple t;
    AKB_RETURN_IF_ERROR(parse_term_id(&pos, &t.subject));
    AKB_RETURN_IF_ERROR(parse_term_id(&pos, &t.predicate));
    AKB_RETURN_IF_ERROR(parse_term_id(&pos, &t.object));
    uint8_t extractor = 0;
    AKB_RETURN_IF_ERROR(ParseByte(block, &pos, &extractor, "claims"));
    if (extractor > uint8_t(ExtractorKind::kOther)) {
      return Status::DataLoss("extractor kind out of range");
    }
    uint64_t bits = 0;
    AKB_RETURN_IF_ERROR(ParseU64(block, &pos, &bits, "claims"));
    double confidence = std::bit_cast<double>(bits);
    if (!std::isfinite(confidence)) {
      return Status::DataLoss("non-finite claim confidence");
    }
    uint64_t len = 0;
    AKB_RETURN_IF_ERROR(ParseVarint(block, &pos, &len, "claims"));
    std::string_view source;
    AKB_RETURN_IF_ERROR(ParseBytes(block, &pos, len, &source, "claims"));
    auto it = loaded.triple_index_.find(t);
    if (it == loaded.triple_index_.end()) {
      return Status::DataLoss(
          "claim references a triple absent from the triples section");
    }
    loaded.claims_of_[it->second].push_back(loaded.claims_.size());
    loaded.claims_.push_back(
        Claim{t, Provenance{std::string(source), ExtractorKind(extractor),
                            confidence}});
  }
  if (pos != block.size()) {
    return Status::DataLoss("trailing bytes in v2 claims section");
  }

  if (stats != nullptr) *stats = v.stats;
  *this = std::move(loaded);
  return Status::OK();
}

Result<SnapshotStats> ReadSnapshotInfo(const std::string& path) {
  TripleStore store;
  SnapshotStats stats;
  Status status = store.LoadSnapshot(path, &stats);
  if (!status.ok()) return status;
  return stats;
}

}  // namespace akb::rdf

#include "rdf/snapshot.h"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>

#include "rdf/triple_store.h"

namespace akb::rdf {

namespace {

constexpr char kMagic[8] = {'A', 'K', 'B', 'S', 'N', 'A', 'P', '1'};
constexpr uint8_t kSectionTerms = 1;
constexpr uint8_t kSectionTriples = 2;
constexpr uint8_t kSectionClaims = 3;
constexpr uint8_t kEndMarker = 0xFF;
/// Writer flushes blocks around this size; bigger records get a block of
/// their own.
constexpr size_t kBlockTarget = 64 * 1024;
/// Reader refuses blocks beyond this, so a corrupted length varint cannot
/// trigger a giant allocation.
constexpr uint64_t kMaxBlockLen = 16ull * 1024 * 1024;

// ------------------------------------------------------------ primitives

void WriteU32(std::ostream& out, uint32_t v) {
  char bytes[4] = {char(v & 0xFF), char((v >> 8) & 0xFF),
                   char((v >> 16) & 0xFF), char((v >> 24) & 0xFF)};
  out.write(bytes, 4);
}

bool ReadU32(std::istream& in, uint32_t* out) {
  unsigned char bytes[4];
  if (!in.read(reinterpret_cast<char*>(bytes), 4)) return false;
  *out = uint32_t(bytes[0]) | uint32_t(bytes[1]) << 8 |
         uint32_t(bytes[2]) << 16 | uint32_t(bytes[3]) << 24;
  return true;
}

void WriteStreamVarint(std::ostream& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(char((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(char(v));
}

bool ReadStreamVarint(std::istream& in, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    int c = in.get();
    if (c == std::char_traits<char>::eof()) return false;
    v |= uint64_t(c & 0x7F) << shift;
    if (!(c & 0x80)) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;  // overlong varint
}

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(char((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(char(v));
}

Status ParseVarint(std::string_view block, size_t* pos, uint64_t* out,
                   const char* what) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (*pos >= block.size()) {
      return Status::DataLoss(std::string("record overruns block in ") + what);
    }
    unsigned char c = static_cast<unsigned char>(block[(*pos)++]);
    v |= uint64_t(c & 0x7F) << shift;
    if (!(c & 0x80)) {
      *out = v;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::DataLoss(std::string("overlong varint in ") + what);
}

Status ParseByte(std::string_view block, size_t* pos, uint8_t* out,
                 const char* what) {
  if (*pos >= block.size()) {
    return Status::DataLoss(std::string("record overruns block in ") + what);
  }
  *out = static_cast<uint8_t>(block[(*pos)++]);
  return Status::OK();
}

Status ParseBytes(std::string_view block, size_t* pos, uint64_t len,
                  std::string_view* out, const char* what) {
  if (len > block.size() - *pos) {
    return Status::DataLoss(std::string("record overruns block in ") + what);
  }
  *out = block.substr(*pos, len);
  *pos += len;
  return Status::OK();
}

Status ParseU64(std::string_view block, size_t* pos, uint64_t* out,
                const char* what) {
  std::string_view bytes;
  AKB_RETURN_IF_ERROR(ParseBytes(block, pos, 8, &bytes, what));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[size_t(i)]);
  }
  *out = v;
  return Status::OK();
}

// --------------------------------------------------------- section writer

/// Streams one section: records accumulate in a single block buffer which
/// flushes at kBlockTarget, feeding the running CRC; End() writes the
/// block terminator and the section CRC.
class SectionWriter {
 public:
  explicit SectionWriter(std::ostream* out) : out_(out) {}

  void Begin(uint8_t id, uint64_t record_count) {
    out_->put(char(id));
    WriteStreamVarint(*out_, record_count);
    crc_ = 0;
    buffer_.clear();
  }

  void Add(std::string_view record) {
    if (record.size() > kMaxBlockLen) {
      oversized_record_ = true;
      return;
    }
    if (!buffer_.empty() && buffer_.size() + record.size() > kBlockTarget) {
      Flush();
    }
    buffer_.append(record);
  }

  void End() {
    if (!buffer_.empty()) Flush();
    WriteStreamVarint(*out_, 0);
    WriteU32(*out_, crc_);
  }

  bool oversized_record() const { return oversized_record_; }

 private:
  void Flush() {
    WriteStreamVarint(*out_, buffer_.size());
    out_->write(buffer_.data(), std::streamsize(buffer_.size()));
    crc_ = Crc32c(buffer_, crc_);
    buffer_.clear();
  }

  std::ostream* out_;
  std::string buffer_;
  uint32_t crc_ = 0;
  bool oversized_record_ = false;
};

// --------------------------------------------------------- section reader

/// Streams one section through `parse_record(block, &pos)`, which consumes
/// exactly one record; records never span blocks, so each block parses to
/// completion. Validates the declared record count and the section CRC.
template <typename RecordFn>
Status ReadSection(std::istream& in, uint8_t expected_id, const char* name,
                   RecordFn parse_record) {
  int id = in.get();
  if (id == std::char_traits<char>::eof()) {
    return Status::DataLoss(std::string("truncated before section ") + name);
  }
  if (uint8_t(id) != expected_id) {
    return Status::DataLoss(std::string("expected section ") + name);
  }
  uint64_t declared = 0;
  if (!ReadStreamVarint(in, &declared)) {
    return Status::DataLoss(std::string("truncated record count in ") + name);
  }
  uint64_t parsed = 0;
  uint32_t crc = 0;
  std::string block;
  for (;;) {
    uint64_t len = 0;
    if (!ReadStreamVarint(in, &len)) {
      return Status::DataLoss(std::string("truncated block length in ") +
                              name);
    }
    if (len == 0) break;
    if (len > kMaxBlockLen) {
      return Status::DataLoss(std::string("oversized block in ") + name);
    }
    block.resize(size_t(len));
    if (!in.read(block.data(), std::streamsize(len))) {
      return Status::DataLoss(std::string("truncated block in ") + name);
    }
    crc = Crc32c(block, crc);
    size_t pos = 0;
    while (pos < block.size()) {
      if (parsed >= declared) {
        return Status::DataLoss(std::string("more records than declared in ") +
                                name);
      }
      AKB_RETURN_IF_ERROR(parse_record(std::string_view(block), &pos));
      ++parsed;
    }
  }
  if (parsed != declared) {
    return Status::DataLoss(std::string("fewer records than declared in ") +
                            name);
  }
  uint32_t stored_crc = 0;
  if (!ReadU32(in, &stored_crc)) {
    return Status::DataLoss(std::string("truncated CRC in ") + name);
  }
  if (stored_crc != crc) {
    return Status::DataLoss(std::string("CRC mismatch in section ") + name);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256>& table = *[] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
      }
      (*t)[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (unsigned char b : data) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status TripleStore::SaveSnapshot(const std::string& path,
                                 SnapshotStats* stats) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kSnapshotVersion);

  SectionWriter section(&out);
  std::string record;

  section.Begin(kSectionTerms, dict_.size());
  for (TermId id = 1; id <= dict_.size(); ++id) {
    const Term& term = dict_.Lookup(id);
    record.clear();
    record.push_back(char(term.kind));
    AppendVarint(&record, term.lexical.size());
    record += term.lexical;
    section.Add(record);
  }
  section.End();

  section.Begin(kSectionTriples, triples_.size());
  for (const Triple& t : triples_) {
    record.clear();
    AppendVarint(&record, t.subject);
    AppendVarint(&record, t.predicate);
    AppendVarint(&record, t.object);
    section.Add(record);
  }
  section.End();

  section.Begin(kSectionClaims, claims_.size());
  for (const Claim& c : claims_) {
    record.clear();
    AppendVarint(&record, c.triple.subject);
    AppendVarint(&record, c.triple.predicate);
    AppendVarint(&record, c.triple.object);
    record.push_back(char(c.provenance.extractor));
    uint64_t bits = std::bit_cast<uint64_t>(c.provenance.confidence);
    for (int i = 0; i < 8; ++i) record.push_back(char((bits >> (8 * i)) & 0xFF));
    AppendVarint(&record, c.provenance.source.size());
    record += c.provenance.source;
    section.Add(record);
  }
  section.End();

  if (section.oversized_record()) {
    return Status::InvalidArgument(
        "store contains a term or source larger than the 16 MiB record "
        "limit");
  }
  out.put(char(kEndMarker));
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  if (stats != nullptr) {
    stats->version = kSnapshotVersion;
    stats->bytes = uint64_t(out.tellp());
    stats->terms = dict_.size();
    stats->triples = triples_.size();
    stats->claims = claims_.size();
  }
  return Status::OK();
}

Status TripleStore::LoadSnapshot(const std::string& path,
                                 SnapshotStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  in.seekg(0, std::ios::end);
  uint64_t file_bytes = uint64_t(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(kMagic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("'" + path + "' is not an akb snapshot");
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version)) {
    return Status::DataLoss("truncated snapshot version");
  }
  if (version == 0 || version > kSnapshotVersion) {
    return Status::Unimplemented(
        "snapshot format version " + std::to_string(version) +
        " is not supported (this build reads up to version " +
        std::to_string(kSnapshotVersion) + ")");
  }

  // Build into a fresh store; *this is replaced only after every section
  // validates, so a corrupt snapshot can never leave a partial store.
  TripleStore loaded;

  AKB_RETURN_IF_ERROR(ReadSection(
      in, kSectionTerms, "terms",
      [&](std::string_view block, size_t* pos) -> Status {
        uint8_t kind = 0;
        AKB_RETURN_IF_ERROR(ParseByte(block, pos, &kind, "terms"));
        if (kind > uint8_t(TermKind::kBlank)) {
          return Status::DataLoss("term kind out of range");
        }
        uint64_t len = 0;
        AKB_RETURN_IF_ERROR(ParseVarint(block, pos, &len, "terms"));
        std::string_view lexical;
        AKB_RETURN_IF_ERROR(ParseBytes(block, pos, len, &lexical, "terms"));
        Term term{TermKind(kind), std::string(lexical)};
        TermId id = loaded.dict_.Intern(term);
        if (id != loaded.dict_.size()) {
          return Status::DataLoss("duplicate term in dictionary section");
        }
        return Status::OK();
      }));

  auto parse_term_id = [&](std::string_view block, size_t* pos, TermId* out,
                           const char* name) -> Status {
    uint64_t id = 0;
    AKB_RETURN_IF_ERROR(ParseVarint(block, pos, &id, name));
    if (id < 1 || id > loaded.dict_.size()) {
      return Status::DataLoss(std::string("term id out of range in ") + name);
    }
    *out = TermId(id);
    return Status::OK();
  };

  AKB_RETURN_IF_ERROR(ReadSection(
      in, kSectionTriples, "triples",
      [&](std::string_view block, size_t* pos) -> Status {
        Triple t;
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.subject, "triples"));
        AKB_RETURN_IF_ERROR(
            parse_term_id(block, pos, &t.predicate, "triples"));
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.object, "triples"));
        if (loaded.triple_index_.count(t) > 0) {
          return Status::DataLoss("duplicate distinct triple");
        }
        size_t ti = loaded.triples_.size();
        loaded.triples_.push_back(t);
        loaded.claims_of_.emplace_back();
        loaded.triple_index_.emplace(t, ti);
        loaded.by_subject_[t.subject].push_back(ti);
        loaded.by_predicate_[t.predicate].push_back(ti);
        loaded.by_object_[t.object].push_back(ti);
        return Status::OK();
      }));

  AKB_RETURN_IF_ERROR(ReadSection(
      in, kSectionClaims, "claims",
      [&](std::string_view block, size_t* pos) -> Status {
        Triple t;
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.subject, "claims"));
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.predicate, "claims"));
        AKB_RETURN_IF_ERROR(parse_term_id(block, pos, &t.object, "claims"));
        uint8_t extractor = 0;
        AKB_RETURN_IF_ERROR(ParseByte(block, pos, &extractor, "claims"));
        if (extractor > uint8_t(ExtractorKind::kOther)) {
          return Status::DataLoss("extractor kind out of range");
        }
        uint64_t bits = 0;
        AKB_RETURN_IF_ERROR(ParseU64(block, pos, &bits, "claims"));
        double confidence = std::bit_cast<double>(bits);
        if (!std::isfinite(confidence)) {
          return Status::DataLoss("non-finite claim confidence");
        }
        uint64_t len = 0;
        AKB_RETURN_IF_ERROR(ParseVarint(block, pos, &len, "claims"));
        std::string_view source;
        AKB_RETURN_IF_ERROR(ParseBytes(block, pos, len, &source, "claims"));
        auto it = loaded.triple_index_.find(t);
        if (it == loaded.triple_index_.end()) {
          return Status::DataLoss("claim references a triple absent from "
                                  "the triples section");
        }
        loaded.claims_of_[it->second].push_back(loaded.claims_.size());
        loaded.claims_.push_back(
            Claim{t, Provenance{std::string(source), ExtractorKind(extractor),
                                confidence}});
        return Status::OK();
      }));

  int end = in.get();
  if (end == std::char_traits<char>::eof()) {
    return Status::DataLoss("truncated before end marker");
  }
  if (uint8_t(end) != kEndMarker) {
    return Status::DataLoss("bad end marker");
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::DataLoss("trailing bytes after end marker");
  }

  if (stats != nullptr) {
    stats->version = version;
    stats->bytes = file_bytes;
    stats->terms = loaded.dict_.size();
    stats->triples = loaded.triples_.size();
    stats->claims = loaded.claims_.size();
  }
  *this = std::move(loaded);
  return Status::OK();
}

Result<SnapshotStats> ReadSnapshotInfo(const std::string& path) {
  TripleStore store;
  SnapshotStats stats;
  Status status = store.LoadSnapshot(path, &stats);
  if (!status.ok()) return status;
  return stats;
}

}  // namespace akb::rdf

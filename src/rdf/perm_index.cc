#include "rdf/perm_index.h"

#include <algorithm>
#include <numeric>

namespace akb::rdf {

PermIndexData BuildPermIndex(const Triple* triples, size_t n,
                             Permutation perm) {
  PermIndexData index;
  index.order.resize(n);
  std::iota(index.order.begin(), index.order.end(), 0u);
  std::sort(index.order.begin(), index.order.end(),
            [triples, perm](uint32_t a, uint32_t b) {
              return PermutationKey(triples[a], perm) <
                     PermutationKey(triples[b], perm);
            });
  index.keys.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const std::array<TermId, 3> key =
        PermutationKey(triples[index.order[i]], perm);
    index.keys[i] = uint64_t(key[0]) << 32 | key[1];
  }
  return index;
}

}  // namespace akb::rdf

// RDF terms. The framework represents all extracted knowledge as RDF triples
// ("actionable knowledge" in the paper); terms are dictionary-encoded to
// 32-bit ids so triples are cheap to index and compare.
#ifndef AKB_RDF_TERM_H_
#define AKB_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace akb::rdf {

/// Kind of an RDF term.
enum class TermKind : uint8_t {
  kIri = 0,      ///< e.g. <http://akb.local/entity/film/42>
  kLiteral = 1,  ///< e.g. "Wuhan"
  kBlank = 2,    ///< e.g. _:b12
};

/// Dictionary id of a term. 0 is reserved as the invalid id / wildcard.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

/// A decoded term: kind plus lexical form (IRI string without angle
/// brackets, literal value without quotes, or blank-node label without _:).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;

  static Term Iri(std::string iri) {
    return Term{TermKind::kIri, std::move(iri)};
  }
  static Term Literal(std::string value) {
    return Term{TermKind::kLiteral, std::move(value)};
  }
  static Term Blank(std::string label) {
    return Term{TermKind::kBlank, std::move(label)};
  }

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical;
  }

  /// N-Triples surface form: <iri>, "literal", or _:label.
  std::string ToString() const;
};

struct TermHash {
  size_t operator()(const Term& t) const {
    return std::hash<std::string>{}(t.lexical) * 3 +
           static_cast<size_t>(t.kind);
  }
};

/// Well-known predicate names used across the framework.
namespace predicates {
inline constexpr std::string_view kType = "http://akb.local/ontology/type";
inline constexpr std::string_view kLabel = "http://akb.local/ontology/label";
}  // namespace predicates

/// IRI builders for the akb.local namespace.
std::string EntityIri(std::string_view class_name, std::string_view entity);
std::string AttributeIri(std::string_view class_name,
                         std::string_view attribute);
std::string ClassIri(std::string_view class_name);

}  // namespace akb::rdf

#endif  // AKB_RDF_TERM_H_

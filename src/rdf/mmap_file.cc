#include "rdf/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace akb::rdf {

namespace {

std::atomic<int64_t> g_active_mappings{0};

std::string ErrnoText() { return std::strerror(errno); }

}  // namespace

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "': " + ErrnoText());
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status =
        Status::IoError("cannot stat '" + path + "': " + ErrnoText());
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("'" + path + "' is not a regular file");
  }
  size_t size = size_t(st.st_size);
  char* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) {
      Status status =
          Status::IoError("cannot mmap '" + path + "': " + ErrnoText());
      ::close(fd);
      return status;
    }
    data = static_cast<char*>(mapped);
  }
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  return std::shared_ptr<MmapFile>(new MmapFile(path, data, size));
}

MmapFile::MmapFile(std::string path, char* data, size_t size)
    : path_(std::move(path)), data_(data), size_(size) {
  g_active_mappings.fetch_add(1, std::memory_order_relaxed);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
#ifndef NDEBUG
    // Poison before unmapping: a straggler thread still reading through a
    // dangling borrowed view faults right here, deterministically, rather
    // than racing munmap and sometimes reading whatever got mapped next.
    ::mprotect(data_, size_, PROT_NONE);
#endif
    ::munmap(data_, size_);
  }
  g_active_mappings.fetch_sub(1, std::memory_order_relaxed);
}

Result<std::string_view> MmapFile::Range(uint64_t offset,
                                         uint64_t bytes) const {
  if (offset > size_ || bytes > size_ - offset) {
    return Status::DataLoss("'" + path_ + "': range [" +
                            std::to_string(offset) + ", " +
                            std::to_string(offset + bytes) +
                            ") runs past the mapped " +
                            std::to_string(size_) + " bytes");
  }
  return std::string_view(data_ + offset, size_t(bytes));
}

int64_t MmapFile::active_mappings() {
  return g_active_mappings.load(std::memory_order_relaxed);
}

}  // namespace akb::rdf

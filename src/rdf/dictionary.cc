#include "rdf/dictionary.h"

#include <cassert>

namespace akb::rdf {

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  terms_.push_back(term);
  TermId id = static_cast<TermId>(terms_.size());  // ids start at 1
  index_.emplace(term, id);
  return id;
}

TermId Dictionary::Find(const Term& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

const Term& Dictionary::Lookup(TermId id) const {
  assert(Contains(id));
  return terms_[id - 1];
}

}  // namespace akb::rdf

// Triples and provenance records.
//
// The paper attaches two pieces of metadata to every extracted triple:
// where it came from (Web source) and which extractor produced it, plus a
// confidence score from the unified criterion (§3.1). Knowledge fusion
// (§3.2) consumes exactly this (triple, source, extractor, confidence)
// quadruple, so the store keeps claims, not just distinct triples.
#ifndef AKB_RDF_TRIPLE_H_
#define AKB_RDF_TRIPLE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"
#include "rdf/term.h"

namespace akb::rdf {

/// A dictionary-encoded RDF triple.
struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t seed = std::hash<TermId>{}(t.subject);
    HashCombine(&seed, std::hash<TermId>{}(t.predicate));
    HashCombine(&seed, std::hash<TermId>{}(t.object));
    return seed;
  }
};

/// Which of the framework's extractors asserted a claim.
enum class ExtractorKind : uint8_t {
  kGroundTruth = 0,  ///< synthetic world truth (evaluation only)
  kExistingKb = 1,   ///< KB-combining extractor (Freebase+DBpedia)
  kQueryStream = 2,  ///< query-stream pattern extractor
  kDomTree = 3,      ///< Algorithm 1 tag-path extractor
  kWebText = 4,      ///< lexical-pattern text extractor
  kFusion = 5,       ///< produced by the knowledge-fusion phase
  kOther = 6,
};

std::string_view ExtractorKindToString(ExtractorKind kind);

/// Provenance of one claim: the Web source (site / KB / log) it was
/// extracted from, the extractor that produced it, and the extractor's
/// confidence in [0, 1].
struct Provenance {
  std::string source;
  ExtractorKind extractor = ExtractorKind::kOther;
  double confidence = 1.0;
};

/// One claim: a triple asserted by a (source, extractor) pair.
struct Claim {
  Triple triple;
  Provenance provenance;
};

}  // namespace akb::rdf

#endif  // AKB_RDF_TRIPLE_H_

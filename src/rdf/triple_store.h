// In-memory triple store with provenance and pattern queries.
#ifndef AKB_RDF_TRIPLE_STORE_H_
#define AKB_RDF_TRIPLE_STORE_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/snapshot.h"
#include "rdf/triple.h"

namespace akb::rdf {

/// A triple pattern; kInvalidTermId (0) in any position is a wildcard.
struct TriplePattern {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  bool operator==(const TriplePattern& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }
};

/// Hash over all three positions (wildcards included), so patterns can key
/// hash maps — e.g. the serving layer's result cache.
struct TriplePatternHash {
  size_t operator()(const TriplePattern& p) const {
    size_t seed = std::hash<TermId>{}(p.subject);
    HashCombine(&seed, std::hash<TermId>{}(p.predicate));
    HashCombine(&seed, std::hash<TermId>{}(p.object));
    return seed;
  }
};

/// Append-only triple store.
///
/// Stores *claims* (triple + provenance); the same triple asserted by two
/// sources yields two claims but one distinct triple. Maintains S/P/O hash
/// indexes over distinct triples for pattern matching, and a per-triple claim
/// list for fusion.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// The dictionary encoding this store's terms.
  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Adds one claim. Returns the distinct-triple index the claim attached to.
  size_t Insert(const Triple& triple, Provenance provenance);

  /// Convenience: interns the terms and inserts.
  size_t InsertDecoded(const Term& s, const Term& p, const Term& o,
                       Provenance provenance);

  /// Number of claims (provenanced assertions).
  size_t num_claims() const { return claims_.size(); }
  /// Number of distinct triples.
  size_t num_triples() const { return triples_.size(); }

  const Claim& claim(size_t i) const { return claims_[i]; }
  const Triple& triple(size_t i) const { return triples_[i]; }

  /// All claims attached to distinct triple `i` (indices into claims).
  const std::vector<size_t>& claims_of(size_t triple_index) const {
    return claims_of_[triple_index];
  }

  /// True iff the exact triple is present.
  bool Contains(const Triple& t) const;

  /// Distinct-triple indices matching the pattern, in insertion order.
  std::vector<size_t> Match(const TriplePattern& pattern) const;

  /// Decodes triple `i` into N-Triples surface form ("<s> <p> <o> .").
  std::string DecodeToString(size_t triple_index) const;

  /// All distinct objects for (subject, predicate), in insertion order.
  std::vector<TermId> ObjectsOf(TermId subject, TermId predicate) const;

  /// Writes the store as a version-1 binary snapshot (see rdf/snapshot.h
  /// for the format). Streaming: never buffers more than one block.
  /// `stats` (optional) receives the written sizes.
  Status SaveSnapshot(const std::string& path,
                      SnapshotStats* stats = nullptr) const;

  /// Writes the store in the requested snapshot format: kV1 streams the
  /// portable varint archive, kV2 writes the page-aligned zero-copy serve
  /// image (dictionary arena + triple array + prebuilt permutation
  /// indexes). Both are lossless — claims included — so converting a
  /// snapshot between formats round-trips exactly.
  Status SaveSnapshot(const std::string& path, SnapshotFormat format,
                      SnapshotStats* stats = nullptr) const;

  /// Replaces this store's contents with the snapshot at `path`, either
  /// format (dispatched on the file's magic). Every section is CRC-checked
  /// and structurally validated; on any failure the store is left exactly
  /// as it was (a partial snapshot never loads).
  Status LoadSnapshot(const std::string& path, SnapshotStats* stats = nullptr);

 private:
  Status SaveSnapshotV1(const std::string& path, SnapshotStats* stats) const;
  Status SaveSnapshotV2(const std::string& path, SnapshotStats* stats) const;
  /// `in` is positioned just past the 8-byte magic.
  Status LoadSnapshotV1(std::istream& in, uint64_t file_bytes,
                        SnapshotStats* stats);
  Status LoadSnapshotV2(const std::string& path, SnapshotStats* stats);

  Dictionary dict_;
  std::vector<Claim> claims_;
  std::vector<Triple> triples_;
  std::vector<std::vector<size_t>> claims_of_;
  std::unordered_map<Triple, size_t, TripleHash> triple_index_;
  std::unordered_map<TermId, std::vector<size_t>> by_subject_;
  std::unordered_map<TermId, std::vector<size_t>> by_predicate_;
  std::unordered_map<TermId, std::vector<size_t>> by_object_;
};

}  // namespace akb::rdf

#endif  // AKB_RDF_TRIPLE_STORE_H_

// Sorted permutation indexes over an array of distinct triples — the
// serve-time structure behind serve::KbView's O(log n + k) pattern
// resolution, factored into akb::rdf so the v2 snapshot writer and the
// in-memory view build *the same bytes* from the same triples. order[i]
// is a triple index; keys[i] packs the first two sort components of that
// triple into (first << 32) | second, so prefix searches binary-search a
// contiguous uint64 array.
#ifndef AKB_RDF_PERM_INDEX_H_
#define AKB_RDF_PERM_INDEX_H_

#include <array>
#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace akb::rdf {

/// The three permutations the serve path indexes. Values double as array
/// slots in snapshots and views.
enum class Permutation { kSpo = 0, kPos = 1, kOsp = 2 };

/// The triple's key in the given permutation's sort order.
inline std::array<TermId, 3> PermutationKey(const Triple& t,
                                            Permutation perm) {
  switch (perm) {
    case Permutation::kSpo:
      return {t.subject, t.predicate, t.object};
    case Permutation::kPos:
      return {t.predicate, t.object, t.subject};
    case Permutation::kOsp:
      return {t.object, t.subject, t.predicate};
  }
  return {};
}

/// One sorted permutation: triple indices in key order plus the packed
/// two-component prefix keys, parallel arrays.
struct PermIndexData {
  std::vector<uint32_t> order;
  std::vector<uint64_t> keys;
};

/// Builds one permutation over `triples[0, n)`. Distinct triples have
/// distinct keys in every permutation, so the sort is total and the
/// result deterministic — the foundation of v2 snapshot byte-determinism.
PermIndexData BuildPermIndex(const Triple* triples, size_t n,
                             Permutation perm);

}  // namespace akb::rdf

#endif  // AKB_RDF_PERM_INDEX_H_

#include "core/pipeline.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table.h"
#include "extract/attribute_dedup.h"
#include "mapreduce/thread_pool.h"
#include "obs/metrics.h"
#include "obs/statusz.h"
#include "obs/trace.h"
#include "synth/taxonomy_gen.h"
#include "fusion/copy_detect.h"
#include "fusion/functionality.h"
#include "fusion/hierarchy_fusion.h"
#include "fusion/relation_fusion.h"
#include "fusion/vote.h"

namespace akb::core {

namespace {

using extract::ExtractedTriple;

// Generic KB profiles for arbitrary worlds: DBpedia-like takes the head of
// each class's attribute inventory, Freebase-like an overlapping tail, so
// combining them is strictly better than either (the Table 2 effect).
synth::KbProfile GenericProfile(const synth::World& world,
                                const std::vector<std::string>& classes,
                                bool dbpedia_like, uint64_t seed,
                                double error_rate) {
  synth::KbProfile profile;
  profile.kb_name = dbpedia_like ? "DBpediaSynth" : "FreebaseSynth";
  profile.seed = seed;
  for (const std::string& name : classes) {
    auto cls_id = world.FindClass(name);
    if (!cls_id) continue;
    size_t a = world.cls(*cls_id).attributes.size();
    synth::KbClassProfile cp;
    cp.class_name = name;
    if (dbpedia_like) {
      cp.attr_offset = 0;
      cp.instance_attributes = std::max<size_t>(1, a * 6 / 10);
      cp.declared_attributes = std::max<size_t>(1, a * 3 / 10);
    } else {
      cp.instance_attributes = std::max<size_t>(1, a * 35 / 100);
      size_t union_size = std::max<size_t>(1, a * 85 / 100);
      cp.attr_offset = union_size > cp.instance_attributes
                           ? union_size - cp.instance_attributes
                           : 0;
      cp.declared_attributes = std::max<size_t>(1, a / 10);
      cp.entity_coverage = 0.9;
      cp.fact_coverage = 0.4;
    }
    cp.error_rate = error_rate;
    profile.classes.push_back(std::move(cp));
  }
  return profile;
}

struct ItemMeta {
  std::string class_name;
  std::string entity;
  std::string attr_key;      ///< canonical identity (sorted-token key)
  std::string attr_display;  ///< first-seen surface, for readable IRIs
};

// ---------------------------------------------------------- KB checkpoint
//
// The phase-1 claims KB persists as a TripleStore snapshot: one claim per
// assembled fusion claim, with every string the assembly loop needs packed
// losslessly into literal terms ("<len>:<bytes>" fields, so hostile
// characters survive). Replaying the claims in order re-interns items,
// sources, and values in exactly the cold-run order, which is what makes
// the warm-started fusion byte-identical.
//
//   subject   = fields(class name, resolved entity)
//   predicate = fields(attribute key, attribute display surface)
//   object    = normalized value
//   provenance: source + confidence as assembled; extractor is kExistingKb
//               when the item was covered by the existing-KB channel
//               (novelty accounting), kOther otherwise.

std::string JoinFields(std::initializer_list<std::string_view> fields) {
  std::string out;
  for (std::string_view f : fields) {
    out += std::to_string(f.size());
    out += ':';
    out += f;
  }
  return out;
}

bool SplitFields(std::string_view packed, size_t expected,
                 std::vector<std::string>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < packed.size()) {
    size_t colon = packed.find(':', pos);
    if (colon == std::string_view::npos || colon == pos) return false;
    size_t len = 0;
    for (size_t i = pos; i < colon; ++i) {
      char c = packed[i];
      if (c < '0' || c > '9') return false;
      len = len * 10 + size_t(c - '0');
      if (len > packed.size()) return false;
    }
    pos = colon + 1;
    if (len > packed.size() - pos) return false;
    out->push_back(std::string(packed.substr(pos, len)));
    pos += len;
  }
  return out->size() == expected;
}

rdf::TripleStore EncodeClaimCheckpoint(
    const fusion::ClaimTable& table, const std::vector<ItemMeta>& item_meta,
    const std::unordered_set<std::string>& kb_items) {
  rdf::TripleStore store;
  for (const fusion::Claim& c : table.claims()) {
    const ItemMeta& meta = item_meta[c.item];
    bool kb_covered = kb_items.count(table.item_name(c.item)) > 0;
    store.InsertDecoded(
        rdf::Term::Literal(JoinFields({meta.class_name, meta.entity})),
        rdf::Term::Literal(JoinFields({meta.attr_key, meta.attr_display})),
        rdf::Term::Literal(table.value_name(c.value)),
        rdf::Provenance{table.source_name(c.source),
                        kb_covered ? rdf::ExtractorKind::kExistingKb
                                   : rdf::ExtractorKind::kOther,
                        c.confidence});
  }
  return store;
}

Status DecodeClaimCheckpoint(const rdf::TripleStore& store,
                             fusion::ClaimTable* table,
                             std::vector<ItemMeta>* item_meta,
                             std::unordered_set<std::string>* kb_items) {
  const rdf::Dictionary& dict = store.dictionary();
  std::unordered_map<std::string, size_t> meta_index;
  std::vector<std::string> subject_fields, predicate_fields;
  for (size_t i = 0; i < store.num_claims(); ++i) {
    const rdf::Claim& claim = store.claim(i);
    const rdf::Term& s = dict.Lookup(claim.triple.subject);
    const rdf::Term& p = dict.Lookup(claim.triple.predicate);
    const rdf::Term& o = dict.Lookup(claim.triple.object);
    if (s.kind != rdf::TermKind::kLiteral ||
        p.kind != rdf::TermKind::kLiteral ||
        o.kind != rdf::TermKind::kLiteral ||
        !SplitFields(s.lexical, 2, &subject_fields) ||
        !SplitFields(p.lexical, 2, &predicate_fields)) {
      return Status::DataLoss("claim " + std::to_string(i) +
                              " is not a pipeline KB checkpoint record");
    }
    std::string item = subject_fields[0] + "|" + subject_fields[1] + "|" +
                       predicate_fields[0];
    if (meta_index.count(item) == 0) {
      meta_index.emplace(item, item_meta->size());
      item_meta->push_back(ItemMeta{subject_fields[0], subject_fields[1],
                                    predicate_fields[0],
                                    predicate_fields[1]});
    }
    if (claim.provenance.extractor == rdf::ExtractorKind::kExistingKb) {
      kb_items->insert(item);
    }
    table->Add(std::move(item), claim.provenance.source, o.lexical,
               claim.provenance.confidence);
  }
  return Status::OK();
}

/// Shared by the checkpoint save and load stages: volume counters plus the
/// wire format version and per-section sizes (v1 sizes include section
/// framing; v2 sizes are exact payloads).
void RecordSnapshotMetrics(const rdf::SnapshotStats& snap) {
  AKB_COUNTER_ADD("akb.snapshot.bytes", int64_t(snap.bytes));
  AKB_COUNTER_ADD("akb.snapshot.terms", int64_t(snap.terms));
  AKB_COUNTER_ADD("akb.snapshot.triples", int64_t(snap.triples));
  AKB_GAUGE_SET("akb.snapshot.format_version", int64_t(snap.version));
  AKB_COUNTER_ADD("akb.snapshot.dict_bytes", int64_t(snap.dict_bytes));
  AKB_COUNTER_ADD("akb.snapshot.triples_bytes", int64_t(snap.triples_bytes));
  AKB_COUNTER_ADD("akb.snapshot.index_bytes", int64_t(snap.index_bytes));
  AKB_COUNTER_ADD("akb.snapshot.claims_bytes", int64_t(snap.claims_bytes));
}

}  // namespace

std::string_view FusionMethodToString(FusionMethod method) {
  switch (method) {
    case FusionMethod::kVote:
      return "VOTE";
    case FusionMethod::kAccu:
      return "ACCU";
    case FusionMethod::kPopAccu:
      return "POPACCU";
    case FusionMethod::kAccuConfidence:
      return "ACCU+conf";
    case FusionMethod::kAccuConfidenceCopy:
      return "ACCU+conf+copy";
    case FusionMethod::kVoteConfidence:
      return "VOTE+conf";
    case FusionMethod::kRelation:
      return "RELATION";
    case FusionMethod::kHybrid:
      return "HYBRID";
    case FusionMethod::kHierarchyAware:
      return "HIER";
  }
  return "?";
}

std::string PipelineReport::ToString() const {
  std::string out;
  TextTable stages_table({"Stage", "Time (s)", "Outputs"});
  stages_table.set_title("Pipeline stages");
  for (const StageStats& s : stages) {
    stages_table.AddRow({s.name, FormatDouble(s.seconds, 3),
                         FormatWithCommas(static_cast<int64_t>(s.outputs))});
  }
  out += stages_table.ToString();
  out += "\n";

  TextTable quality_table({"Class", "Attrs found", "Attr P", "Attr R",
                           "Fused triples", "Fused P", "Raw P",
                           "Novel triples", "Novel P"});
  quality_table.set_title("Per-class quality vs world ground truth");
  for (const ClassQuality& q : quality) {
    quality_table.AddRow(
        {q.class_name, std::to_string(q.attributes_found),
         FormatDouble(q.attribute_precision, 3),
         FormatDouble(q.attribute_recall, 3), std::to_string(q.fused_triples),
         FormatDouble(q.fused_precision, 3), FormatDouble(q.raw_precision, 3),
         std::to_string(q.novel_triples),
         FormatDouble(q.novel_precision, 3)});
  }
  out += quality_table.ToString();
  out += "\nTotal claims: " + FormatWithCommas(int64_t(total_claims)) +
         ", fused triples: " + FormatWithCommas(int64_t(fused_triples)) +
         ", discovered entities: " +
         FormatWithCommas(int64_t(discovered_entities)) +
         ", taxonomy edges: " + FormatWithCommas(int64_t(taxonomy_edges)) +
         " (typing accuracy " + FormatDouble(typing_accuracy, 3) +
         "), total time: " + FormatDouble(total_seconds, 3) + "s\n";
  if (!metrics.entries.empty()) {
    out += "\n";
    out += metrics.ToTable();
  }
  return out;
}

PipelineReport RunPipeline(const synth::World& world,
                           const PipelineConfig& config,
                           rdf::TripleStore* augmented) {
  PipelineReport report;
  Stopwatch total;
  Rng rng(config.seed);
  obs::MetricsSnapshot metrics_before = obs::MetricsRegistry::Global().Snapshot();
  AKB_COUNTER_INC("akb.pipeline.runs");
  obs::ScopedSpan run_span("pipeline.run");

  std::vector<std::string> classes = config.classes;
  if (classes.empty()) {
    for (const auto& wc : world.classes()) classes.push_back(wc.name);
  }

  // One long-lived shared pool serves every sharded stage of this run —
  // and every MapReduce job and fusion round loop inside it, so round
  // barriers reuse warm workers instead of respawning threads (the
  // per-caller TaskGroup barrier in ParallelFor is the stage fence).
  // Every parallel section below either writes disjoint, order-indexed
  // slots or merges with order-insensitive operations, so the report is
  // bit-identical at every worker count — the serial reference path is
  // pool == nullptr.
  size_t workers =
      config.num_workers
          ? config.num_workers
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  mapreduce::ThreadPool* pool =
      workers > 1 ? mapreduce::SharedPool(workers) : nullptr;
  size_t chunks = std::max<size_t>(1, workers * 4);
  AKB_GAUGE_SET("akb.pipeline.workers", int64_t(workers));

  auto stage = [&](const std::string& name, auto&& fn) {
    obs::ScopedSpan span("pipeline." + name);
    Stopwatch watch;
    size_t outputs = fn();
    AKB_HISTOGRAM_RECORD("akb.pipeline.stage_micros", watch.ElapsedMicros());
    report.stages.push_back(StageStats{name, watch.ElapsedSeconds(), outputs});
  };
  auto finalize = [&] {
    report.total_seconds = total.ElapsedSeconds();
    report.metrics =
        obs::MetricsRegistry::Global().Snapshot().DiffFrom(metrics_before);
  };

  // Cross-phase state: fusion and the final evaluation consume these
  // whether extraction produced them (cold run) or a checkpoint did (warm
  // start).
  extract::KbExtraction combined;
  extract::QueryExtraction query_extraction;
  std::vector<extract::DomExtraction> dom_extractions(classes.size());
  std::vector<extract::TextExtraction> text_extractions(classes.size());
  fusion::ClaimTable table;
  std::vector<ItemMeta> item_meta;
  // Items the existing-KB channel covered; fused statements outside this
  // set are *novel* knowledge (the augmentation payoff).
  std::unordered_set<std::string> kb_items;

  const bool warm_start = !config.load_kb_path.empty();
  if (warm_start) {
    // ---------- Warm start: resume from a phase-1 claims checkpoint.
    stage("load KB checkpoint", [&]() -> size_t {
      rdf::TripleStore checkpoint;
      rdf::SnapshotStats snap;
      Status s;
      {
        obs::ScopedSpan span("snapshot.load");
        Stopwatch watch;
        s = checkpoint.LoadSnapshot(config.load_kb_path, &snap);
        AKB_HISTOGRAM_RECORD("akb.snapshot.load_micros",
                             watch.ElapsedMicros());
      }
      if (s.ok()) {
        RecordSnapshotMetrics(snap);
        s = DecodeClaimCheckpoint(checkpoint, &table, &item_meta, &kb_items);
      }
      if (!s.ok()) {
        report.status =
            Status(s.code(), "loading KB checkpoint '" +
                                 config.load_kb_path + "': " + s.message());
        return 0;
      }
      AKB_COUNTER_ADD("akb.pipeline.claims", int64_t(table.num_claims()));
      report.total_claims = table.num_claims();
      return table.num_claims();
    });
    if (!report.status.ok()) {
      finalize();
      return report;
    }
  }

  if (!warm_start) {
    // ---------- Render the paper's four source types from the world.
    synth::KbSnapshot dbpedia, freebase;
    std::vector<std::vector<synth::WebSite>> sites_per_class(classes.size());
    std::vector<std::vector<synth::TextArticle>> articles_per_class(
        classes.size());
    std::vector<synth::QueryRecord> query_log;

    stage("render inputs", [&] {
      // Every seed is drawn up front from the single master RNG, in the same
      // order the serial pipeline drew them, so the rendered bytes do not
      // depend on task scheduling.
      synth::KbProfile dbpedia_profile = GenericProfile(
          world, classes, true, rng.NextU64(), config.kb_error_rate);
      synth::KbProfile freebase_profile = GenericProfile(
          world, classes, false, rng.NextU64(), config.kb_error_rate);
      std::vector<synth::SiteConfig> site_configs(classes.size());
      std::vector<synth::TextConfig> text_configs(classes.size());
      for (size_t c = 0; c < classes.size(); ++c) {
        site_configs[c].class_name = classes[c];
        site_configs[c].num_sites = config.sites_per_class;
        site_configs[c].pages_per_site = config.pages_per_site;
        site_configs[c].value_error_rate = config.site_error_rate;
        site_configs[c].seed = rng.NextU64();
        text_configs[c].class_name = classes[c];
        text_configs[c].num_articles = config.articles_per_class;
        text_configs[c].value_error_rate = config.text_error_rate;
        text_configs[c].seed = rng.NextU64();
      }
      synth::QueryLogConfig query_config;
      query_config.seed = rng.NextU64();
      size_t relevant_total = 0;
      for (const std::string& name : classes) {
        auto cls_id = world.FindClass(name);
        if (!cls_id) continue;
        synth::QueryClassConfig qc;
        qc.class_name = name;
        qc.relevant_records = config.queries_per_class;
        qc.queried_attributes = std::max<size_t>(
            5, world.cls(*cls_id).attributes.size() / 2);
        query_config.classes.push_back(qc);
        relevant_total += qc.relevant_records;
      }
      query_config.total_records = relevant_total + config.junk_queries;

      // Fan out: the two KBs, the query log, and one (class, range) shard
      // per worker-sized slice of each class's sites and articles. Each
      // shard writes its own slot; per class, slots concatenate in range
      // order, which the range-generation APIs guarantee equals a full
      // serial render.
      struct RenderShard {
        size_t cls;
        size_t begin;
        size_t end;
        bool text;
      };
      std::vector<RenderShard> render_shards;
      for (size_t c = 0; c < classes.size(); ++c) {
        size_t n = site_configs[c].num_sites;
        size_t pieces = std::max<size_t>(1, std::min(n, workers));
        size_t per = n ? (n + pieces - 1) / pieces : 0;
        for (size_t b = 0; b < n; b += per) {
          render_shards.push_back({c, b, std::min(n, b + per), false});
        }
        n = text_configs[c].num_articles;
        pieces = std::max<size_t>(1, std::min(n, workers));
        per = n ? (n + pieces - 1) / pieces : 0;
        for (size_t b = 0; b < n; b += per) {
          render_shards.push_back({c, b, std::min(n, b + per), true});
        }
      }
      std::vector<std::vector<synth::WebSite>> site_parts(
          render_shards.size());
      std::vector<std::vector<synth::TextArticle>> article_parts(
          render_shards.size());
      AKB_COUNTER_ADD("akb.pipeline.shards",
                      int64_t(render_shards.size() + 3));
      mapreduce::ParallelFor(
          pool, render_shards.size() + 3,
          [&](size_t t) {
            Stopwatch shard_watch;
            if (t == 0) {
              dbpedia = synth::GenerateKb(world, dbpedia_profile);
            } else if (t == 1) {
              freebase = synth::GenerateKb(world, freebase_profile);
            } else if (t == 2) {
              query_log = synth::GenerateQueryLog(world, query_config);
            } else {
              const RenderShard& shard = render_shards[t - 3];
              if (shard.text) {
                article_parts[t - 3] = synth::GenerateArticleRange(
                    world, text_configs[shard.cls], shard.begin, shard.end);
              } else {
                site_parts[t - 3] = synth::GenerateSiteRange(
                    world, site_configs[shard.cls], shard.begin, shard.end);
              }
            }
            AKB_HISTOGRAM_RECORD("akb.pipeline.shard_micros",
                                 shard_watch.ElapsedMicros());
          },
          /*grain=*/1);  // shards are heavy and uneven; never chunk them
      for (size_t i = 0; i < render_shards.size(); ++i) {
        size_t c = render_shards[i].cls;
        for (auto& article : article_parts[i]) {
          articles_per_class[c].push_back(std::move(article));
        }
        for (auto& site : site_parts[i]) {
          sites_per_class[c].push_back(std::move(site));
        }
      }

      size_t outputs = dbpedia.TotalFacts() + freebase.TotalFacts();
      size_t pages_rendered = 0, articles_rendered = 0;
      for (size_t c = 0; c < classes.size(); ++c) {
        for (const auto& site : sites_per_class[c]) {
          outputs += site.pages.size();
          pages_rendered += site.pages.size();
        }
        outputs += articles_per_class[c].size();
        articles_rendered += articles_per_class[c].size();
      }
      AKB_COUNTER_ADD("akb.pipeline.pages_rendered", int64_t(pages_rendered));
      AKB_COUNTER_ADD("akb.pipeline.articles_rendered",
                      int64_t(articles_rendered));
      outputs += query_log.size();
      AKB_COUNTER_ADD("akb.pipeline.query_log_lines", int64_t(query_log.size()));
      return outputs;
    });

    // ---------- Knowledge extraction phase.
    // (1) Existing KBs.
    extract::ExistingKbExtractor kb_extractor(config.kb_extractor);
    std::vector<ExtractedTriple> all_triples;
    stage("existing-KB extraction", [&] {
      // Combine and the two triple extractions are independent read-only
      // passes over the snapshots; the triples append in fixed order after
      // the barrier.
      std::vector<ExtractedTriple> t1, t2;
      mapreduce::ParallelFor(pool, 3, [&](size_t t) {
        if (t == 0) {
          combined = kb_extractor.Combine({&dbpedia, &freebase});
        } else if (t == 1) {
          t1 = kb_extractor.ExtractTriples(dbpedia);
        } else {
          t2 = kb_extractor.ExtractTriples(freebase);
        }
      });
      all_triples.insert(all_triples.end(), t1.begin(), t1.end());
      all_triples.insert(all_triples.end(), t2.begin(), t2.end());
      size_t attrs = 0;
      for (const auto& c : combined.classes) attrs += c.attributes.size();
      return attrs;
    });

    // Entity sets: the paper specifies classes by representative entities of
    // Freebase.
    std::vector<std::vector<std::string>> entity_names(classes.size());
    for (size_t c = 0; c < classes.size(); ++c) {
      std::unordered_set<std::string> names;
      for (const auto* kb : {&freebase, &dbpedia}) {
        const synth::KbClass* kc = kb->FindClass(classes[c]);
        if (kc == nullptr) continue;
        for (const std::string& n : kc->entity_names) names.insert(n);
      }
      entity_names[c].assign(names.begin(), names.end());
      std::sort(entity_names[c].begin(), entity_names[c].end());
    }

    // (2) Query stream.
    extract::QueryStreamExtractor query_extractor(config.query_extractor);
    for (size_t c = 0; c < classes.size(); ++c) {
      query_extractor.AddClass(classes[c], entity_names[c]);
    }
    stage("query-stream extraction", [&] {
      std::vector<std::string> queries;
      queries.reserve(query_log.size());
      for (const auto& record : query_log) queries.push_back(record.query);
      query_extraction = query_extractor.ExtractSharded(queries, pool);
      size_t attrs = 0;
      for (const auto& c : query_extraction.classes) {
        attrs += c.credible_attributes.size();
      }
      return attrs;
    });

    // Seeds per class: KB-combined union query-stream attributes.
    std::vector<std::vector<std::string>> seeds(classes.size());
    for (size_t c = 0; c < classes.size(); ++c) {
      if (const auto* kc = combined.FindClass(classes[c])) {
        for (const auto& a : kc->attributes) seeds[c].push_back(a.surface);
      }
      if (const auto* qc = query_extraction.FindClass(classes[c])) {
        for (const auto& a : qc->credible_attributes) {
          seeds[c].push_back(a.surface);
        }
      }
    }

    // (3) DOM trees.
    extract::DomTreeExtractor dom_extractor(config.dom_extractor);
    stage("DOM-tree extraction", [&] {
      // Map: every (class, site) pair is one task — flattening classes and
      // sites into one fan-out keeps all workers busy even when a class has
      // few sites. Reduce: per-class ordered merge.
      std::vector<std::pair<size_t, size_t>> units;  // (class, site)
      std::vector<std::vector<extract::DomExtraction>> site_shards(
          classes.size());
      for (size_t c = 0; c < classes.size(); ++c) {
        site_shards[c].resize(sites_per_class[c].size());
        for (size_t s = 0; s < sites_per_class[c].size(); ++s) {
          units.emplace_back(c, s);
        }
      }
      AKB_COUNTER_ADD("akb.pipeline.shards", int64_t(units.size()));
      mapreduce::ParallelFor(pool, units.size(), [&](size_t u) {
        auto [c, s] = units[u];
        Stopwatch shard_watch;
        obs::ScopedSpan span("extract.dom." + classes[c]);
        site_shards[c][s] = dom_extractor.ExtractSite(
            sites_per_class[c][s], entity_names[c], seeds[c]);
        AKB_HISTOGRAM_RECORD("akb.pipeline.shard_micros",
                             shard_watch.ElapsedMicros());
      }, /*grain=*/1);
      size_t outputs = 0;
      for (size_t c = 0; c < classes.size(); ++c) {
        dom_extractions[c] = dom_extractor.MergeSiteExtractions(
            std::move(site_shards[c]), seeds[c]);
        outputs += dom_extractions[c].new_attributes.size();
        all_triples.insert(all_triples.end(),
                           dom_extractions[c].triples.begin(),
                           dom_extractions[c].triples.end());
      }
      return outputs;
    });

    // (4) Web texts.
    extract::WebTextExtractor text_extractor(config.text_extractor);
    stage("Web-text extraction", [&] {
      // One map task per class (the extractor's deduper grows across a
      // class's sentences in order, so a class is the finest deterministic
      // shard); triples append in class order after the barrier.
      AKB_COUNTER_ADD("akb.pipeline.shards", int64_t(classes.size()));
      mapreduce::ParallelFor(pool, classes.size(), [&](size_t c) {
        Stopwatch shard_watch;
        obs::ScopedSpan span("extract.text." + classes[c]);
        std::vector<std::string> documents, source_names;
        for (const auto& article : articles_per_class[c]) {
          documents.push_back(article.text);
          source_names.push_back(article.source);
        }
        text_extractions[c] = text_extractor.Extract(
            classes[c], documents, source_names, entity_names[c], seeds[c]);
        AKB_HISTOGRAM_RECORD("akb.pipeline.shard_micros",
                             shard_watch.ElapsedMicros());
      }, /*grain=*/1);
      size_t outputs = 0;
      for (size_t c = 0; c < classes.size(); ++c) {
        outputs += text_extractions[c].new_attributes.size();
        all_triples.insert(all_triples.end(),
                           text_extractions[c].triples.begin(),
                           text_extractions[c].triples.end());
      }
      return outputs;
    });

    // (5) New entity creation (joint linking + discovery, MapReduce). The
    // job's output is sorted by cluster key, so the worker count is free.
    extract::EntityCreationConfig entity_creation_config =
        config.entity_creation;
    entity_creation_config.num_workers = workers;
    entity_creation_config.pool = pool;
    extract::EntityCreator entity_creator(entity_creation_config);
    extract::EntityResolution resolution;
    stage("entity creation", [&] {
      std::vector<std::string> kb_names;
      for (const auto& names : entity_names) {
        kb_names.insert(kb_names.end(), names.begin(), names.end());
      }
      resolution = entity_creator.Run(all_triples, kb_names);
      report.discovered_entities = resolution.discovered_entities;
      return resolution.entities.size();
    });

    // (6) Enhanced ontology: taxonomic extraction + entity typing (§3.1).
    if (config.build_taxonomy) {
      stage("taxonomy extraction", [&] {
        synth::TaxonomyCorpusConfig taxo_config;
        taxo_config.sentences_per_entity = config.taxonomy_sentences_per_entity;
        taxo_config.seed = config.seed ^ 0x5bd1e995ull;
        auto docs = synth::GenerateTaxonomyCorpus(world, taxo_config);
        std::vector<std::string> texts;
        for (const auto& doc : docs) texts.push_back(doc.text);
        extract::TaxonomyExtractor taxonomy_extractor(config.taxonomy);
        auto taxonomy = taxonomy_extractor.Extract(texts);
        report.taxonomy_edges = taxonomy.edges.size();
        size_t typed = 0, correct = 0;
        for (const std::string& name : classes) {
          auto cls_id = world.FindClass(name);
          if (!cls_id) continue;
          std::string category = synth::CategoryNameOf(name);
          for (const auto& entity : world.cls(*cls_id).entities) {
            ++typed;
            if (taxonomy.BestCategoryOf(entity.name) == category) ++correct;
          }
        }
        report.typing_accuracy =
            typed ? static_cast<double>(correct) / typed : 0.0;
        return taxonomy.edges.size();
      });
    }

    // ---------- Knowledge fusion phase.
    stage("claim assembly", [&] {
      // The per-triple string work (entity resolution, attribute
      // canonicalization, value normalization) is pure, so it precomputes in
      // parallel ranges into per-triple slots; the id-assigning intern loop
      // then runs serially over the prepared rows in triple order, which
      // fixes every ItemId/SourceId/ValueId independent of scheduling.
      struct PreparedClaim {
        std::string entity;
        std::string attr_key;
        std::string value;
        std::string item;
      };
      std::vector<PreparedClaim> prepared(all_triples.size());
      mapreduce::ParallelForRanges(
          pool, all_triples.size(), chunks,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              const ExtractedTriple& t = all_triples[i];
              PreparedClaim& p = prepared[i];
              p.entity = t.entity;
              size_t resolved = resolution.Resolve(p.entity);
              if (resolved != SIZE_MAX) {
                p.entity = resolution.entities[resolved].name;
              }
              p.attr_key = extract::AttributeKey(t.attribute);
              p.item = t.class_name + "|" + p.entity + "|" + p.attr_key;
              // Same value normalization as ClaimTable::FromTriples.
              p.value = NormalizeSurface(t.value);
            }
          });
      std::unordered_map<std::string, size_t> meta_index;
      std::unordered_map<rdf::ExtractorKind, size_t> claims_by_extractor;
      for (size_t i = 0; i < all_triples.size(); ++i) {
        const ExtractedTriple& t = all_triples[i];
        PreparedClaim& p = prepared[i];
        ++claims_by_extractor[t.extractor];
        if (!meta_index.count(p.item)) {
          meta_index.emplace(p.item, item_meta.size());
          item_meta.push_back(
              ItemMeta{t.class_name, p.entity, p.attr_key, t.attribute});
        }
        if (t.extractor == rdf::ExtractorKind::kExistingKb) {
          kb_items.insert(p.item);
        }
        table.Add(std::move(p.item), t.source, std::move(p.value),
                  t.confidence);
      }
      static obs::CounterFamily claims_family("akb.pipeline.claims.");
      for (const auto& [kind, count] : claims_by_extractor) {
        claims_family.Add(rdf::ExtractorKindToString(kind), int64_t(count));
      }
      AKB_COUNTER_ADD("akb.pipeline.claims", int64_t(table.num_claims()));
      report.total_claims = table.num_claims();
      return table.num_claims();
    });
  }  // !warm_start: rendering, extraction, and claim assembly

  if (!config.save_kb_path.empty()) {
    // ---------- Checkpoint the phase-1 claims KB (works after either a
    // cold claim assembly or a warm-start load, so checkpoints can be
    // re-saved / migrated).
    stage("save KB checkpoint", [&]() -> size_t {
      rdf::TripleStore checkpoint =
          EncodeClaimCheckpoint(table, item_meta, kb_items);
      rdf::SnapshotStats snap;
      Status s;
      {
        obs::ScopedSpan span("snapshot.save");
        Stopwatch watch;
        s = checkpoint.SaveSnapshot(config.save_kb_path,
                                    config.snapshot_format, &snap);
        AKB_HISTOGRAM_RECORD("akb.snapshot.save_micros",
                             watch.ElapsedMicros());
      }
      if (!s.ok()) {
        report.status =
            Status(s.code(), "saving KB checkpoint '" +
                                 config.save_kb_path + "': " + s.message());
        return 0;
      }
      RecordSnapshotMetrics(snap);
      return size_t(snap.claims);
    });
    if (!report.status.ok()) {
      finalize();
      return report;
    }
  }

  fusion::FusionOutput output;
  stage(std::string("fusion [") +
            std::string(FusionMethodToString(config.fusion)) + "]",
        [&] {
          // Every family shards by item (ACCU synchronizes only at round
          // barriers), so the worker count never changes the output.
          switch (config.fusion) {
            case FusionMethod::kVote: {
              fusion::VoteConfig vote;
              vote.num_workers = workers;
              vote.pool = pool;
              output = fusion::Vote(table, vote);
              break;
            }
            case FusionMethod::kAccu: {
              fusion::AccuConfig accu = config.accu;
              accu.num_workers = workers;
              accu.pool = pool;
              output = fusion::Accu(table, accu);
              break;
            }
            case FusionMethod::kPopAccu: {
              fusion::AccuConfig accu = config.accu;
              accu.popularity = true;
              accu.num_workers = workers;
              accu.pool = pool;
              output = fusion::Accu(table, accu);
              break;
            }
            case FusionMethod::kAccuConfidence: {
              fusion::AccuConfig accu = config.accu;
              accu.use_confidence = true;
              accu.num_workers = workers;
              accu.pool = pool;
              output = fusion::Accu(table, accu);
              break;
            }
            case FusionMethod::kAccuConfidenceCopy: {
              fusion::AccuConfig accu = config.accu;
              accu.use_confidence = true;
              accu.num_workers = workers;
              accu.pool = pool;
              fusion::CopyDetectConfig copy_config;
              copy_config.num_workers = workers;
              copy_config.pool = pool;
              fusion::CopyDetection copies =
                  fusion::DetectCopying(table, copy_config);
              accu.source_weights = copies.independence;
              output = fusion::Accu(table, accu);
              break;
            }
            case FusionMethod::kVoteConfidence: {
              fusion::VoteConfig vote;
              vote.use_confidence = true;
              vote.num_workers = workers;
              vote.pool = pool;
              output = fusion::Vote(table, vote);
              break;
            }
            case FusionMethod::kRelation:
              output = fusion::RelationFuse(table);
              break;
            case FusionMethod::kHybrid:
              // Item keys are "class|entity|attribute key": route by the
              // attribute's estimated functionality degree.
              output = fusion::HybridFuse(table);
              break;
            case FusionMethod::kHierarchyAware: {
              // Location-valued items resolve against the world's value
              // hierarchy; flat items fall back to voting.
              fusion::HierarchyFusionConfig hconfig;
              hconfig.use_confidence = true;
              output = fusion::HierarchyFuse(table, world.hierarchy(),
                                             hconfig);
              break;
            }
          }
          return output.beliefs.size();
        });

  // Export per-source estimated quality (Accu accuracy / RelationFuse
  // precision; empty for plain Vote) as ppm gauges so statusz can report
  // which sources the fuser trusts without re-running fusion.
  if (!output.source_quality.empty()) {
    static obs::GaugeFamily quality_family(
        std::string(obs::kFusionSourceQualityPrefix));
    for (size_t i = 0; i < output.source_quality.size(); ++i) {
      quality_family.Set(table.source_name(fusion::SourceId(i)),
                         int64_t(output.source_quality[i] * 1e6));
    }
  }

  // ---------- KB augmentation + evaluation against the world.
  // World-side lookups: AttributeKey(spec name) -> id; entity name -> id.
  struct WorldIndex {
    std::unordered_map<std::string, synth::AttributeId> attrs;
    std::unordered_map<std::string, synth::EntityId> entities;
    synth::ClassId cls = 0;
    bool valid = false;
  };
  std::unordered_map<std::string, WorldIndex> world_index;
  for (const std::string& name : classes) {
    auto cls_id = world.FindClass(name);
    if (!cls_id) continue;
    WorldIndex index;
    index.cls = *cls_id;
    index.valid = true;
    const synth::WorldClass& wc = world.cls(*cls_id);
    for (synth::AttributeId a = 0; a < wc.attributes.size(); ++a) {
      index.attrs.emplace(extract::AttributeKey(wc.attributes[a].name), a);
    }
    for (synth::EntityId e = 0; e < wc.entities.size(); ++e) {
      index.entities.emplace(NormalizeSurface(wc.entities[e].name), e);
    }
    world_index.emplace(name, std::move(index));
  }

  auto value_is_true = [&](const ItemMeta& meta,
                           const std::string& value) -> int {
    auto wi = world_index.find(meta.class_name);
    if (wi == world_index.end()) return -1;
    auto a = wi->second.attrs.find(meta.attr_key);
    auto e = wi->second.entities.find(NormalizeSurface(meta.entity));
    if (a == wi->second.attrs.end() || e == wi->second.entities.end()) {
      return -1;  // hallucinated attribute or entity: count as wrong
    }
    return world.IsTrueValue(wi->second.cls, e->second, a->second, value) ? 1
                                                                          : 0;
  };

  stage("KB augmentation", [&] {
    size_t emitted = 0;
    size_t novel_emitted = 0;
    // Per class accumulators.
    std::unordered_map<std::string, ClassQuality> quality;
    for (const std::string& name : classes) {
      quality[name].class_name = name;
    }
    std::unordered_map<std::string, std::pair<size_t, size_t>> fused_counts,
        raw_counts, novel_counts;  // class -> (correct, total)

    // Truth lookups against the world (hash probes + value matching) are
    // read-only, so both verdict passes shard into disjoint slots; the
    // counting and the store inserts stay serial in item order, keeping
    // the augmented store's triple order scheduling-independent.
    struct FusedVerdict {
      fusion::ValueId value;
      int truth;
    };
    std::vector<std::vector<FusedVerdict>> fused_verdicts(table.num_items());
    mapreduce::ParallelForRanges(
        pool, table.num_items(), chunks,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const ItemMeta& meta = item_meta[i];
            for (fusion::ValueId v :
                 output.TruthsOf(static_cast<fusion::ItemId>(i))) {
              fused_verdicts[i].push_back(
                  FusedVerdict{v, value_is_true(meta, table.value_name(v))});
            }
          }
        });
    std::vector<int8_t> raw_truth(table.claims().size());
    mapreduce::ParallelForRanges(
        pool, table.claims().size(), chunks,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const fusion::Claim& claim = table.claims()[i];
            raw_truth[i] = static_cast<int8_t>(value_is_true(
                item_meta[claim.item], table.value_name(claim.value)));
          }
        });

    for (fusion::ItemId i = 0; i < table.num_items(); ++i) {
      const ItemMeta& meta = item_meta[i];
      bool novel = kb_items.count(table.item_name(i)) == 0;
      for (const FusedVerdict& verdict : fused_verdicts[i]) {
        const std::string& value = table.value_name(verdict.value);
        ++emitted;
        auto& counts = fused_counts[meta.class_name];
        ++counts.second;
        if (verdict.truth == 1) ++counts.first;
        if (novel) {
          ++novel_emitted;
          auto& nc = novel_counts[meta.class_name];
          ++nc.second;
          if (verdict.truth == 1) ++nc.first;
        }
        if (augmented != nullptr) {
          augmented->InsertDecoded(
              rdf::Term::Iri(
                  rdf::EntityIri(meta.class_name, meta.entity)),
              rdf::Term::Iri(
                  rdf::AttributeIri(meta.class_name, meta.attr_display)),
              rdf::Term::Literal(value),
              rdf::Provenance{"fusion", rdf::ExtractorKind::kFusion, 1.0});
        }
      }
    }
    for (size_t i = 0; i < table.claims().size(); ++i) {
      const fusion::Claim& claim = table.claims()[i];
      const ItemMeta& meta = item_meta[claim.item];
      auto& counts = raw_counts[meta.class_name];
      ++counts.second;
      if (raw_truth[i] == 1) ++counts.first;
    }

    // Attribute discovery quality: union of all extractors' attributes.
    for (size_t c = 0; c < classes.size(); ++c) {
      auto wi = world_index.find(classes[c]);
      if (wi == world_index.end()) continue;
      std::unordered_set<std::string> found;
      if (const auto* kc = combined.FindClass(classes[c])) {
        for (const auto& a : kc->attributes) {
          found.insert(extract::AttributeKey(a.surface));
        }
      }
      if (const auto* qc = query_extraction.FindClass(classes[c])) {
        for (const auto& a : qc->credible_attributes) {
          found.insert(extract::AttributeKey(a.surface));
        }
      }
      for (const auto& a : dom_extractions[c].new_attributes) {
        found.insert(extract::AttributeKey(a.surface));
      }
      for (const auto& a : text_extractions[c].new_attributes) {
        found.insert(extract::AttributeKey(a.surface));
      }
      size_t correct = 0;
      for (const std::string& key : found) {
        if (wi->second.attrs.count(key)) ++correct;
      }
      ClassQuality& q = quality[classes[c]];
      q.attributes_found = found.size();
      q.attribute_precision =
          found.empty() ? 0.0
                        : static_cast<double>(correct) / found.size();
      q.attribute_recall =
          wi->second.attrs.empty()
              ? 0.0
              : static_cast<double>(correct) / wi->second.attrs.size();
      auto fc = fused_counts[classes[c]];
      q.fused_triples = fc.second;
      q.fused_precision =
          fc.second ? static_cast<double>(fc.first) / fc.second : 0.0;
      auto rc = raw_counts[classes[c]];
      q.raw_precision =
          rc.second ? static_cast<double>(rc.first) / rc.second : 0.0;
      auto nc = novel_counts[classes[c]];
      q.novel_triples = nc.second;
      q.novel_precision =
          nc.second ? static_cast<double>(nc.first) / nc.second : 0.0;
    }
    for (const std::string& name : classes) {
      report.quality.push_back(quality[name]);
    }
    AKB_COUNTER_ADD("akb.pipeline.triples_fused", int64_t(emitted));
    AKB_COUNTER_ADD("akb.pipeline.triples_novel", int64_t(novel_emitted));
    report.fused_triples = emitted;
    return emitted;
  });

  AKB_HISTOGRAM_RECORD("akb.pipeline.run_micros", total.ElapsedMicros());
  finalize();
  return report;
}

}  // namespace akb::core

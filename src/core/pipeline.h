// The Figure-1 pipeline: the full KB-construction framework.
//
// Knowledge extraction phase: the query stream and the two existing KBs
// seed attribute extraction; the DOM-tree and Web-text extractors use those
// seeds on the open Web; every triple gets a unified confidence score; new
// entities are created by joint linking + discovery. Knowledge fusion
// phase: claims from all four extractors are fused (accuracy-aware,
// confidence-weighted, correlation-aware), and the result augments the
// Freebase-like KB.
#ifndef AKB_CORE_PIPELINE_H_
#define AKB_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "extract/dom_extractor.h"
#include "extract/entity_creation.h"
#include "obs/metrics.h"
#include "extract/kb_extractor.h"
#include "extract/query_extractor.h"
#include "extract/taxonomy_extractor.h"
#include "extract/text_extractor.h"
#include "fusion/accu.h"
#include "rdf/triple_store.h"
#include "synth/kb_gen.h"
#include "synth/query_gen.h"
#include "synth/site_gen.h"
#include "synth/text_gen.h"
#include "synth/world.h"

namespace akb::core {

/// Which fusion method closes the pipeline.
enum class FusionMethod : uint8_t {
  kVote = 0,
  kAccu = 1,
  kPopAccu = 2,
  kAccuConfidence = 3,       ///< ACCU + extraction-confidence weighting
  kAccuConfidenceCopy = 4,   ///< + copy-detection source weights
  kVoteConfidence = 5,       ///< VOTE weighted by extraction confidence
  kRelation = 6,             ///< relation-based fusion (correlations)
  kHybrid = 7,               ///< functionality-degree routing (ACCU/LTM)
  kHierarchyAware = 8,       ///< value-hierarchy chain resolution
};

std::string_view FusionMethodToString(FusionMethod method);

struct PipelineConfig {
  PipelineConfig() {
    // The pipeline runs the full paper design, including automatic new-
    // entity creation from page headings (§3.1).
    dom_extractor.discover_entities = true;
  }

  uint64_t seed = 42;
  /// Classes to run (must exist in the world); empty = all.
  std::vector<std::string> classes;

  /// Web rendering volume per class.
  size_t sites_per_class = 3;
  size_t pages_per_site = 20;
  size_t articles_per_class = 30;
  /// Query stream volume (relevant records per class).
  size_t queries_per_class = 1500;
  size_t junk_queries = 3000;

  /// Per-channel value error rates: curated KBs are cleaner than scraped
  /// sites, which are cleaner than free text — the reliability gradient
  /// the unified confidence criterion encodes.
  double kb_error_rate = 0.05;
  double site_error_rate = 0.15;
  double text_error_rate = 0.25;

  /// Build the enhanced ontology (taxonomic knowledge extraction over an
  /// is-a corpus; §3.1) and type every entity against it.
  bool build_taxonomy = true;
  size_t taxonomy_sentences_per_entity = 3;

  extract::KbExtractorConfig kb_extractor;
  extract::QueryExtractorConfig query_extractor;
  extract::DomExtractorConfig dom_extractor;
  extract::TextExtractorConfig text_extractor;
  extract::EntityCreationConfig entity_creation;
  extract::TaxonomyExtractorConfig taxonomy;

  FusionMethod fusion = FusionMethod::kAccuConfidenceCopy;
  fusion::AccuConfig accu;
  /// Worker threads for the sharded stages (rendering, extraction, claim
  /// assembly, fusion, augmentation); 0 = one per hardware thread. Every
  /// worker count — including 1, the serial reference path — produces a
  /// bit-identical report.
  size_t num_workers = 0;

  /// Warm start: load the phase-1 claims KB from this binary snapshot
  /// (written by a previous run's save_kb_path) instead of rendering and
  /// extracting, and resume straight into fusion. The fused output is
  /// byte-identical to a cold run at the same seed and fusion config.
  /// Empty = cold run.
  std::string load_kb_path;
  /// After claim assembly, checkpoint the phase-1 claims KB to this path
  /// as a binary snapshot (see rdf/snapshot.h). Empty = no checkpoint.
  std::string save_kb_path;
  /// Wire format for save_kb_path: v1 streams the portable varint
  /// archive, v2 writes the page-aligned zero-copy serve image that
  /// KbView::FromSnapshot mmaps without parsing. Loads auto-detect.
  rdf::SnapshotFormat snapshot_format = rdf::SnapshotFormat::kV1;
};

/// Timing + volume of one pipeline stage.
struct StageStats {
  std::string name;
  double seconds = 0.0;
  size_t outputs = 0;  ///< stage-specific count (triples, attributes, ...)
};

/// Extraction / fusion quality of one class, measured against the world.
struct ClassQuality {
  std::string class_name;
  /// Attribute discovery across all extractors.
  size_t attributes_found = 0;
  double attribute_precision = 0.0;
  double attribute_recall = 0.0;
  /// Fused (entity, attribute, value) statements.
  size_t fused_triples = 0;
  double fused_precision = 0.0;
  /// Raw (pre-fusion) claim precision, for contrast.
  double raw_precision = 0.0;
  /// The augmentation payoff (the paper's goal): fused statements about
  /// (entity, attribute) items the existing KBs did NOT cover — knowledge
  /// the open-Web extractors added.
  size_t novel_triples = 0;
  double novel_precision = 0.0;
};

struct PipelineReport {
  /// Non-OK when a KB checkpoint failed to load or save (the pipeline
  /// stops at the failing stage; partial checkpoints never feed fusion).
  /// Pipeline stages themselves cannot fail.
  Status status;
  std::vector<StageStats> stages;
  std::vector<ClassQuality> quality;
  size_t total_claims = 0;
  size_t fused_triples = 0;
  size_t discovered_entities = 0;
  /// Enhanced-ontology stage: is-a edges harvested and the fraction of
  /// world entities whose most probable extracted category is their true
  /// class (0 when the stage is disabled).
  size_t taxonomy_edges = 0;
  double typing_accuracy = 0.0;
  double total_seconds = 0.0;

  /// What this run added to the process-global obs registry (counters and
  /// histograms are per-run deltas; gauges are end-of-run values). Export
  /// with metrics.ToJson() — `akb_cli pipeline --metrics-out=FILE`.
  obs::MetricsSnapshot metrics;

  /// Formats the report as text tables (stages, per-class quality, and a
  /// stats section from `metrics`).
  std::string ToString() const;
};

/// Runs the full pipeline over (freshly rendered inputs of) `world`.
/// `augmented` (optional) receives the fused triples as an RDF store — the
/// paper's "attach to Freebase for KB augmentation".
PipelineReport RunPipeline(const synth::World& world,
                           const PipelineConfig& config,
                           rdf::TripleStore* augmented = nullptr);

}  // namespace akb::core

#endif  // AKB_CORE_PIPELINE_H_

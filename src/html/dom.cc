#include "html/dom.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/string_util.h"
#include "html/entities.h"

namespace akb::html {

namespace {

constexpr std::array<std::string_view, 14> kVoidElements = {
    "area", "base",  "br",   "col",  "embed",  "hr",  "img",
    "input", "link", "meta", "param", "source", "track", "wbr"};

// Tags implicitly closed when a sibling of the same group opens.
bool ImplicitlyCloses(std::string_view open, std::string_view incoming) {
  if (open == "li" && incoming == "li") return true;
  if (open == "p" && incoming == "p") return true;
  if (open == "option" && incoming == "option") return true;
  if ((open == "dt" || open == "dd") &&
      (incoming == "dt" || incoming == "dd")) {
    return true;
  }
  if ((open == "td" || open == "th") &&
      (incoming == "td" || incoming == "th" || incoming == "tr")) {
    return true;
  }
  if (open == "tr" && incoming == "tr") return true;
  return false;
}

void CollectText(const Node* node, std::string* out) {
  if (node->is_text()) {
    std::string_view trimmed = Trim(node->text());
    if (!trimmed.empty()) {
      if (!out->empty()) out->push_back(' ');
      out->append(trimmed);
    }
    return;
  }
  for (const auto& child : node->children()) {
    CollectText(child.get(), out);
  }
}

void SerializeNode(const Node* node, std::string* out) {
  switch (node->kind()) {
    case NodeKind::kDocument:
      for (const auto& child : node->children()) {
        SerializeNode(child.get(), out);
      }
      break;
    case NodeKind::kText:
      out->append(EncodeEntities(node->text()));
      break;
    case NodeKind::kComment:
      out->append("<!--").append(node->text()).append("-->");
      break;
    case NodeKind::kElement: {
      out->push_back('<');
      out->append(node->tag());
      for (const auto& [name, value] : node->attributes()) {
        out->push_back(' ');
        out->append(name).append("=\"").append(EncodeEntities(value));
        out->push_back('"');
      }
      out->push_back('>');
      if (IsVoidElement(node->tag())) break;
      for (const auto& child : node->children()) {
        SerializeNode(child.get(), out);
      }
      out->append("</").append(node->tag()).append(">");
      break;
    }
  }
}

template <typename Fn>
void Visit(const Node* node, Fn&& fn) {
  fn(node);
  for (const auto& child : node->children()) {
    Visit(child.get(), fn);
  }
}

}  // namespace

bool IsVoidElement(std::string_view tag) {
  for (std::string_view v : kVoidElements) {
    if (v == tag) return true;
  }
  return false;
}

std::string Node::attribute(std::string_view name) const {
  for (const auto& [n, v] : attributes_) {
    if (n == name) return v;
  }
  return "";
}

bool Node::has_attribute(std::string_view name) const {
  for (const auto& [n, v] : attributes_) {
    if (n == name) return true;
  }
  return false;
}

Node* Node::AppendChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AppendElement(std::string tag) {
  auto node = std::make_unique<Node>(NodeKind::kElement);
  node->set_tag(std::move(tag));
  return AppendChild(std::move(node));
}

Node* Node::AppendText(std::string text) {
  auto node = std::make_unique<Node>(NodeKind::kText);
  node->set_text(std::move(text));
  return AppendChild(std::move(node));
}

std::string Node::InnerText() const {
  std::string out;
  CollectText(this, &out);
  return out;
}

std::vector<const Node*> Node::RootPath() const {
  std::vector<const Node*> path;
  for (const Node* n = this; n != nullptr; n = n->parent()) {
    path.push_back(n);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t Node::Depth() const {
  size_t depth = 0;
  for (const Node* n = parent(); n != nullptr; n = n->parent()) ++depth;
  return depth;
}

Document::Document() : root_(std::make_unique<Node>(NodeKind::kDocument)) {}

std::vector<const Node*> Document::TextNodes() const {
  std::vector<const Node*> out;
  Visit(root(), [&](const Node* n) {
    if (n->is_text() && !Trim(n->text()).empty()) out.push_back(n);
  });
  return out;
}

std::vector<const Node*> Document::ElementsByTag(std::string_view tag) const {
  std::vector<const Node*> out;
  Visit(root(), [&](const Node* n) {
    if (n->is_element() && n->tag() == tag) out.push_back(n);
  });
  return out;
}

const Node* Document::FirstByTag(std::string_view tag) const {
  auto all = ElementsByTag(tag);
  return all.empty() ? nullptr : all.front();
}

size_t Document::NodeCount() const {
  size_t count = 0;
  Visit(root(), [&](const Node*) { ++count; });
  return count - 1;  // exclude the synthetic root
}

std::string Document::ToHtml() const {
  std::string out;
  SerializeNode(root(), &out);
  return out;
}

Document ParseHtml(std::string_view markup) {
  Document doc;
  std::vector<Node*> stack;
  stack.push_back(doc.root());

  for (Token& token : Tokenize(markup)) {
    Node* top = stack.back();
    switch (token.kind) {
      case TokenKind::kText: {
        auto node = std::make_unique<Node>(NodeKind::kText);
        node->set_text(std::move(token.data));
        top->AppendChild(std::move(node));
        break;
      }
      case TokenKind::kComment: {
        auto node = std::make_unique<Node>(NodeKind::kComment);
        node->set_text(std::move(token.data));
        top->AppendChild(std::move(node));
        break;
      }
      case TokenKind::kDoctype:
        break;  // not represented in the tree
      case TokenKind::kStartTag: {
        // Apply implicit closes: pop while the open element yields to the
        // incoming tag.
        while (stack.size() > 1 &&
               ImplicitlyCloses(stack.back()->tag(), token.data)) {
          stack.pop_back();
        }
        top = stack.back();
        auto node = std::make_unique<Node>(NodeKind::kElement);
        node->set_tag(token.data);
        for (auto& [name, value] : token.attributes) {
          node->add_attribute(std::move(name), std::move(value));
        }
        Node* raw = top->AppendChild(std::move(node));
        if (!token.self_closing && !IsVoidElement(token.data)) {
          stack.push_back(raw);
        }
        break;
      }
      case TokenKind::kEndTag: {
        // Find a matching open element; if none, ignore the end tag.
        for (size_t k = stack.size(); k-- > 1;) {
          if (stack[k]->tag() == token.data) {
            stack.resize(k);
            break;
          }
        }
        break;
      }
    }
  }
  return doc;
}

}  // namespace akb::html

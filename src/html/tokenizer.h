// HTML tokenizer: splits markup into start tags (with attributes), end tags,
// text, comments, and doctype declarations. Tolerant of real-world sloppiness
// (unquoted attributes, stray '<', missing quotes are handled best-effort).
#ifndef AKB_HTML_TOKENIZER_H_
#define AKB_HTML_TOKENIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace akb::html {

enum class TokenKind : uint8_t {
  kStartTag,
  kEndTag,
  kText,
  kComment,
  kDoctype,
};

struct Token {
  TokenKind kind = TokenKind::kText;
  /// Lowercased tag name for start/end tags; raw text otherwise.
  std::string data;
  /// (name, value) pairs, names lowercased, values entity-decoded.
  std::vector<std::pair<std::string, std::string>> attributes;
  /// Start tag ends with "/>" (also set for void elements by the parser).
  bool self_closing = false;

  /// Returns the attribute value or "" if absent.
  std::string attribute(const std::string& name) const;
};

/// Tokenizes `markup`. Text inside <script>/<style> is emitted as a single
/// raw text token. Never fails: unparseable fragments degrade to text.
std::vector<Token> Tokenize(std::string_view markup);

}  // namespace akb::html

#endif  // AKB_HTML_TOKENIZER_H_

#include "html/tag_path.h"

#include <algorithm>
#include <array>

#include "common/string_util.h"

namespace akb::html {

namespace {

constexpr std::array<std::string_view, 9> kNoiseTags = {
    "b", "i", "em", "strong", "span", "font", "u", "small", "sup"};

// Element chain from root to the nearest element ancestor of `node`
// (inclusive if `node` is itself an element).
std::vector<const Node*> ElementChain(const Node* node) {
  std::vector<const Node*> chain;
  for (const Node* n = node; n != nullptr; n = n->parent()) {
    if (n->is_element()) chain.push_back(n);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

bool IsNoiseTag(std::string_view tag) {
  for (std::string_view t : kNoiseTags) {
    if (t == tag) return true;
  }
  return false;
}

std::string TagPath::ToString() const { return Join(steps, "/"); }

namespace {
// A tag is stripped only when presentational AND unclassed: <span
// class="key"> carries template structure, bare <em> carries style.
bool StripStep(const Node* element, const TagPathOptions& options) {
  return options.strip_noise_tags && IsNoiseTag(element->tag()) &&
         element->attribute("class").empty();
}
}  // namespace

std::string StepSignature(const Node* element, const TagPathOptions& options) {
  std::string sig = element->tag();
  if (options.include_classes) {
    std::string cls = element->attribute("class");
    if (!cls.empty()) {
      // Use the first class token only; that is where templates put their
      // structural role (e.g. "infobox").
      auto tokens = SplitWhitespace(cls);
      if (!tokens.empty()) {
        sig.push_back('.');
        sig.append(tokens.front());
      }
    }
  }
  return sig;
}

TagPath RootTagPath(const Node* node, const TagPathOptions& options) {
  TagPath path;
  for (const Node* e : ElementChain(node)) {
    if (StripStep(e, options)) continue;
    path.steps.push_back(StepSignature(e, options));
  }
  return path;
}

const Node* LowestCommonAncestor(const Node* a, const Node* b) {
  std::vector<const Node*> pa = a->RootPath();
  std::vector<const Node*> pb = b->RootPath();
  const Node* lca = nullptr;
  size_t n = std::min(pa.size(), pb.size());
  for (size_t i = 0; i < n; ++i) {
    if (pa[i] != pb[i]) break;
    lca = pa[i];
  }
  return lca;
}

TagPath PathBetween(const Node* from, const Node* to,
                    const TagPathOptions& options) {
  const Node* lca = LowestCommonAncestor(from, to);
  TagPath path;
  if (lca == nullptr) return path;

  // Up-steps: element ancestors of `from`, strictly below the LCA, from the
  // node outward.
  for (const Node* n = from; n != nullptr && n != lca; n = n->parent()) {
    if (!n->is_element()) continue;
    if (StripStep(n, options)) continue;
    std::string step = "^";
    step += StepSignature(n, options);
    path.steps.push_back(std::move(step));
  }

  // Down-steps: element ancestors of `to`, strictly below the LCA, from the
  // LCA downward.
  std::vector<std::string> down;
  for (const Node* n = to; n != nullptr && n != lca; n = n->parent()) {
    if (!n->is_element()) continue;
    if (StripStep(n, options)) continue;
    down.push_back(StepSignature(n, options));
  }
  std::reverse(down.begin(), down.end());
  for (auto& step : down) path.steps.push_back(std::move(step));
  return path;
}

double TagPathSimilarity(const TagPath& a, const TagPath& b) {
  size_t la = a.steps.size(), lb = b.steps.size();
  if (la == 0 && lb == 0) return 1.0;
  // Edit distance over step tokens.
  std::vector<size_t> prev(la + 1), cur(la + 1);
  for (size_t i = 0; i <= la; ++i) prev[i] = i;
  for (size_t j = 1; j <= lb; ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= la; ++i) {
      size_t sub = prev[i - 1] + (a.steps[i - 1] == b.steps[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  size_t dist = prev[la];
  return 1.0 - static_cast<double>(dist) /
                   static_cast<double>(std::max(la, lb));
}

}  // namespace akb::html

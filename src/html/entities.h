// HTML character entity encoding/decoding (named subset + numeric).
#ifndef AKB_HTML_ENTITIES_H_
#define AKB_HTML_ENTITIES_H_

#include <string>
#include <string_view>

namespace akb::html {

/// Decodes &amp; &lt; &gt; &quot; &apos; &nbsp; and numeric &#NN; / &#xHH;
/// references. Unknown entities are passed through verbatim.
std::string DecodeEntities(std::string_view s);

/// Escapes & < > " for safe embedding in markup / attribute values.
std::string EncodeEntities(std::string_view s);

}  // namespace akb::html

#endif  // AKB_HTML_ENTITIES_H_

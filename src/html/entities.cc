#include "html/entities.h"

#include <cctype>
#include <cstdlib>

namespace akb::html {

namespace {

// Encodes a Unicode code point as UTF-8.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out.push_back(s[i++]);
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back(s[i++]);
      continue;
    }
    std::string_view name = s.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (name == "nbsp") {
      out.push_back(' ');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t cp = 0;
      bool valid = name.size() > 1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t k = 2; k < name.size(); ++k) {
          unsigned char c = static_cast<unsigned char>(name[k]);
          if (!std::isxdigit(c)) {
            valid = false;
            break;
          }
          cp = cp * 16 + static_cast<uint32_t>(
                             std::isdigit(c) ? c - '0'
                                             : std::tolower(c) - 'a' + 10);
        }
      } else {
        for (size_t k = 1; k < name.size(); ++k) {
          unsigned char c = static_cast<unsigned char>(name[k]);
          if (!std::isdigit(c)) {
            valid = false;
            break;
          }
          cp = cp * 10 + static_cast<uint32_t>(c - '0');
        }
      }
      if (valid && cp > 0 && cp <= 0x10FFFF) {
        AppendUtf8(&out, cp);
      } else {
        out.append(s.substr(i, semi - i + 1));
      }
    } else {
      // Unknown entity: pass through verbatim.
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

std::string EncodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace akb::html

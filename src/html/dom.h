// DOM tree: nodes, documents, and a tolerant tree-building parser.
//
// The DOM-tree extractor (paper §4, Algorithm 1) consumes these trees: it
// classifies text nodes into entity / non-entity nodes and reasons about the
// tag paths connecting them.
#ifndef AKB_HTML_DOM_H_
#define AKB_HTML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "html/tokenizer.h"

namespace akb::html {

enum class NodeKind : uint8_t { kDocument, kElement, kText, kComment };

/// One DOM node. Owned by its parent (the Document owns the root).
class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Lowercased tag name; empty for non-elements.
  const std::string& tag() const { return tag_; }
  void set_tag(std::string tag) { tag_ = std::move(tag); }

  /// Text content for text/comment nodes.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  void add_attribute(std::string name, std::string value) {
    attributes_.emplace_back(std::move(name), std::move(value));
  }
  /// Value of the attribute or "" if absent.
  std::string attribute(std::string_view name) const;
  bool has_attribute(std::string_view name) const;

  Node* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  size_t num_children() const { return children_.size(); }
  Node* child(size_t i) const { return children_[i].get(); }

  /// Appends a child and returns a raw pointer to it (ownership kept here).
  Node* AppendChild(std::unique_ptr<Node> child);

  /// Convenience builders for programmatic page construction.
  Node* AppendElement(std::string tag);
  Node* AppendText(std::string text);

  /// Concatenated text of all descendant text nodes, whitespace-normalized.
  std::string InnerText() const;

  /// Chain of nodes from the document root down to (and including) this.
  std::vector<const Node*> RootPath() const;

  /// Depth of this node (root has depth 0).
  size_t Depth() const;

 private:
  NodeKind kind_;
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
};

/// An owned DOM tree.
class Document {
 public:
  Document();

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// The synthetic document root (NodeKind::kDocument).
  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }

  /// All text nodes whose trimmed text is non-empty, in document order.
  std::vector<const Node*> TextNodes() const;

  /// All elements with the given (lowercase) tag, in document order.
  std::vector<const Node*> ElementsByTag(std::string_view tag) const;

  /// First element with the given tag or nullptr.
  const Node* FirstByTag(std::string_view tag) const;

  /// Total node count (excluding the synthetic root).
  size_t NodeCount() const;

  /// Serializes the tree back to markup (element/text/comment nodes).
  std::string ToHtml() const;

 private:
  std::unique_ptr<Node> root_;
};

/// Parses markup into a Document. Tolerant: mismatched end tags are ignored,
/// unclosed elements are closed at EOF, void elements never take children,
/// and the common implicit closes (<li>, <p>, <td>, <tr>, <option>, <dt>,
/// <dd>) are applied.
Document ParseHtml(std::string_view markup);

/// True for HTML void elements (br, img, meta, ...).
bool IsVoidElement(std::string_view tag);

}  // namespace akb::html

#endif  // AKB_HTML_DOM_H_

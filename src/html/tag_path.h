// Tag paths: the structural signatures Algorithm 1 reasons about.
//
// A tag path is the sequence of element steps connecting two nodes in a DOM
// tree. The paper's key observation is that within one web page (and usually
// one site) the tag path from an entity node to each of its attribute nodes
// is highly regular, while paths differ across sites — so patterns must be
// induced per page and cannot be transferred.
#ifndef AKB_HTML_TAG_PATH_H_
#define AKB_HTML_TAG_PATH_H_

#include <string>
#include <vector>

#include "html/dom.h"

namespace akb::html {

/// Canonicalized tag path.
///
/// `steps` are element signatures ("div.infobox", "td", ...). For a
/// node-to-node path the first part walks *up* from the source node to the
/// lowest common ancestor (steps prefixed with '^') and the second part
/// walks *down* to the target.
struct TagPath {
  std::vector<std::string> steps;

  bool operator==(const TagPath& other) const { return steps == other.steps; }
  bool empty() const { return steps.empty(); }
  size_t size() const { return steps.size(); }

  /// "/" joined representation, e.g. "^td/^tr/tr/td".
  std::string ToString() const;
};

struct TagPathOptions {
  /// Presentational tags removed during canonicalization; they carry style,
  /// not structure (the paper: tag paths are "removed of noisy tags").
  bool strip_noise_tags = true;
  /// Include the element's class attribute in the step ("div.infobox").
  bool include_classes = true;
};

/// True for presentational tags skipped by canonicalization (b, i, em,
/// strong, span, font, u, small, sub, sup).
bool IsNoiseTag(std::string_view tag);

/// The canonical signature of one element ("tag" or "tag.class").
std::string StepSignature(const Node* element, const TagPathOptions& options);

/// Path from the document root to `node` (node itself excluded if a text
/// node; its element chain is used).
TagPath RootTagPath(const Node* node, const TagPathOptions& options = {});

/// Path between two nodes via their lowest common ancestor. Up-steps (from
/// `from` to the LCA, exclusive) are prefixed with '^'; down-steps descend
/// from below the LCA to `to`. Returns an empty path if the nodes share no
/// root.
TagPath PathBetween(const Node* from, const Node* to,
                    const TagPathOptions& options = {});

/// Similarity in [0,1]: 1 - (step edit distance) / max(len). Two empty paths
/// have similarity 1.
double TagPathSimilarity(const TagPath& a, const TagPath& b);

/// Lowest common ancestor of two nodes in the same tree, or nullptr.
const Node* LowestCommonAncestor(const Node* a, const Node* b);

}  // namespace akb::html

#endif  // AKB_HTML_TAG_PATH_H_

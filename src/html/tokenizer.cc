#include "html/tokenizer.h"

#include <cctype>

#include "common/string_util.h"
#include "html/entities.h"

namespace akb::html {

namespace {

bool IsNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == '_' || c == ':';
}

// Parses attributes from the inside of a tag: `rest` is everything between
// the tag name and the closing '>'.
void ParseAttributes(std::string_view rest, Token* token) {
  size_t i = 0;
  while (i < rest.size()) {
    while (i < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[i]))) {
      ++i;
    }
    if (i >= rest.size()) break;
    if (rest[i] == '/') {
      token->self_closing = true;
      ++i;
      continue;
    }
    size_t name_start = i;
    while (i < rest.size() && IsNameChar(rest[i])) ++i;
    if (i == name_start) {
      ++i;  // skip junk
      continue;
    }
    std::string name = ToLower(rest.substr(name_start, i - name_start));
    while (i < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[i]))) {
      ++i;
    }
    std::string value;
    if (i < rest.size() && rest[i] == '=') {
      ++i;
      while (i < rest.size() &&
             std::isspace(static_cast<unsigned char>(rest[i]))) {
        ++i;
      }
      if (i < rest.size() && (rest[i] == '"' || rest[i] == '\'')) {
        char quote = rest[i++];
        size_t value_start = i;
        while (i < rest.size() && rest[i] != quote) ++i;
        value = DecodeEntities(rest.substr(value_start, i - value_start));
        if (i < rest.size()) ++i;  // closing quote
      } else {
        size_t value_start = i;
        while (i < rest.size() &&
               !std::isspace(static_cast<unsigned char>(rest[i])) &&
               rest[i] != '/') {
          ++i;
        }
        value = DecodeEntities(rest.substr(value_start, i - value_start));
      }
    }
    token->attributes.emplace_back(std::move(name), std::move(value));
  }
}

}  // namespace

std::string Token::attribute(const std::string& name) const {
  for (const auto& [n, v] : attributes) {
    if (n == name) return v;
  }
  return "";
}

std::vector<Token> Tokenize(std::string_view markup) {
  std::vector<Token> tokens;
  size_t i = 0;

  auto emit_text = [&](std::string_view raw) {
    if (raw.empty()) return;
    Token t;
    t.kind = TokenKind::kText;
    t.data = DecodeEntities(raw);
    tokens.push_back(std::move(t));
  };

  while (i < markup.size()) {
    if (markup[i] != '<') {
      size_t lt = markup.find('<', i);
      if (lt == std::string_view::npos) lt = markup.size();
      emit_text(markup.substr(i, lt - i));
      i = lt;
      continue;
    }

    // Comment.
    if (markup.substr(i, 4) == "<!--") {
      size_t end = markup.find("-->", i + 4);
      Token t;
      t.kind = TokenKind::kComment;
      if (end == std::string_view::npos) {
        t.data = std::string(markup.substr(i + 4));
        i = markup.size();
      } else {
        t.data = std::string(markup.substr(i + 4, end - i - 4));
        i = end + 3;
      }
      tokens.push_back(std::move(t));
      continue;
    }

    // Doctype / other declarations.
    if (i + 1 < markup.size() && markup[i + 1] == '!') {
      size_t end = markup.find('>', i);
      Token t;
      t.kind = TokenKind::kDoctype;
      if (end == std::string_view::npos) {
        t.data = std::string(markup.substr(i + 2));
        i = markup.size();
      } else {
        t.data = std::string(markup.substr(i + 2, end - i - 2));
        i = end + 1;
      }
      tokens.push_back(std::move(t));
      continue;
    }

    bool is_end = i + 1 < markup.size() && markup[i + 1] == '/';
    size_t name_start = i + (is_end ? 2 : 1);
    size_t j = name_start;
    while (j < markup.size() && IsNameChar(markup[j])) ++j;
    if (j == name_start) {
      // Stray '<' — treat as text.
      emit_text(markup.substr(i, 1));
      ++i;
      continue;
    }
    std::string name = ToLower(markup.substr(name_start, j - name_start));
    size_t gt = markup.find('>', j);
    if (gt == std::string_view::npos) {
      emit_text(markup.substr(i));
      break;
    }

    Token t;
    t.kind = is_end ? TokenKind::kEndTag : TokenKind::kStartTag;
    t.data = name;
    if (!is_end) {
      ParseAttributes(markup.substr(j, gt - j), &t);
    }
    tokens.push_back(std::move(t));
    i = gt + 1;

    // Raw-text elements: everything until the matching close tag is one
    // text token.
    if (!is_end && (name == "script" || name == "style")) {
      std::string close = "</" + name;
      size_t end = i;
      while (true) {
        end = markup.find(close, end);
        if (end == std::string_view::npos) {
          end = markup.size();
          break;
        }
        size_t after = end + close.size();
        if (after >= markup.size() || markup[after] == '>' ||
            std::isspace(static_cast<unsigned char>(markup[after]))) {
          break;
        }
        ++end;
      }
      if (end > i) {
        Token raw;
        raw.kind = TokenKind::kText;
        raw.data = std::string(markup.substr(i, end - i));
        tokens.push_back(std::move(raw));
      }
      i = end;
    }
  }
  return tokens;
}

}  // namespace akb::html

// Taxonomic knowledge extraction: Probase-style is-a harvesting (Wu et al.,
// SIGMOD'12, the Web-based taxonomic extractor of the paper's §2.1).
//
// Hearst-family lexical patterns extract (instance, category) pairs from
// free text:
//   "[X] is a/an [Y]"
//   "[Y]s such as [X]"
//   "[X] and other [Y]s"
// Pairs are aggregated into a probabilistic taxonomy: support counts per
// edge, P(category | instance) = support(x,y) / support(x,*), exactly
// Probase's plausibility measure. Categories are naively singularized so
// "films such as X" and "X is a film" reinforce one edge.
#ifndef AKB_EXTRACT_TAXONOMY_EXTRACTOR_H_
#define AKB_EXTRACT_TAXONOMY_EXTRACTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "text/pattern.h"

namespace akb::extract {

struct TaxonomyExtractorConfig {
  /// Minimum sentence support for an edge to be reported.
  size_t min_edge_support = 2;
  /// Max tokens for instance / category noun phrases.
  size_t max_phrase_tokens = 4;
};

struct IsaEdge {
  std::string instance;  ///< normalized surface
  std::string category;  ///< normalized, singularized
  size_t support = 0;
  /// P(category | instance): edge support / total support of the instance.
  double probability = 0.0;
};

struct ExtractedTaxonomy {
  std::vector<IsaEdge> edges;
  size_t sentences_total = 0;
  size_t pattern_hits = 0;

  /// Categories of an instance, most probable first.
  std::vector<IsaEdge> CategoriesOf(const std::string& instance) const;
  /// The most probable category, or "" when unknown.
  std::string BestCategoryOf(const std::string& instance) const;
  /// All instances of a category (direct edges only).
  std::vector<std::string> InstancesOf(const std::string& category) const;
  /// True iff `descendant` reaches `ancestor` through is-a edges
  /// (transitive; cycles are tolerated).
  bool IsDescendant(const std::string& descendant,
                    const std::string& ancestor) const;
};

class TaxonomyExtractor {
 public:
  explicit TaxonomyExtractor(TaxonomyExtractorConfig config = {});

  /// Harvests is-a edges from free-text documents.
  ExtractedTaxonomy Extract(const std::vector<std::string>& documents) const;

  /// The Hearst pattern family, exposed for tests.
  static std::vector<std::string> PatternSpecs();

  /// Normalization used for taxonomy keys ("Films" -> "film").
  static std::string NormalizeTerm(const std::string& surface);

 private:
  TaxonomyExtractorConfig config_;
  std::vector<text::Pattern> patterns_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_TAXONOMY_EXTRACTOR_H_

// Common record types produced by the four knowledge extractors.
#ifndef AKB_EXTRACT_EXTRACTION_H_
#define AKB_EXTRACT_EXTRACTION_H_

#include <string>
#include <vector>

#include "rdf/triple.h"

namespace akb::extract {

/// A discovered attribute of a class (schema-level knowledge).
struct ExtractedAttribute {
  std::string class_name;
  std::string surface;     ///< as seen in the source
  std::string canonical;   ///< normalized representative form
  double confidence = 0.0;
  size_t support = 1;      ///< evidence count (facts / query records / nodes)
  std::string source;      ///< site domain, KB name, or log id
  rdf::ExtractorKind extractor = rdf::ExtractorKind::kOther;
};

/// An extracted (entity, attribute, value) statement (instance-level
/// knowledge), convertible to an RDF triple.
struct ExtractedTriple {
  std::string class_name;
  std::string entity;     ///< entity surface name
  std::string attribute;  ///< attribute surface form
  std::string value;
  double confidence = 0.0;
  std::string source;
  rdf::ExtractorKind extractor = rdf::ExtractorKind::kOther;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_EXTRACTION_H_

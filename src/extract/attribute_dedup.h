// Attribute canonicalization and duplicate removal.
//
// The same attribute surfaces as "birth place", "Birth Place",
// "birth_place", "birthPlace", "place of birth", or a misspelling. The
// paper's extractors must merge these (KB combination does "some
// preprocessing (e.g., duplicate removal)"; open IE must "distinguish
// synonyms" to avoid redundancy). The deduper clusters surface forms by:
//   1. identifier normalization (camelCase / snake_case / hyphens -> words),
//   2. a stopword-free sorted-token key (maps "place of birth" and
//      "birth place" to the same key),
//   3. fuzzy fallback: small edit distance to an existing key.
#ifndef AKB_EXTRACT_ATTRIBUTE_DEDUP_H_
#define AKB_EXTRACT_ATTRIBUTE_DEDUP_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace akb::extract {

/// The canonical clustering key of an attribute surface form.
std::string AttributeKey(std::string_view surface);

/// Clusters attribute surface forms; assigns stable cluster ids.
class AttributeDeduper {
 public:
  struct Options {
    /// Accept a fuzzy merge when the edit similarity between keys is at
    /// least this (0.82 tolerates a transposition — two unit edits — in a
    /// ~12-char key).
    double fuzzy_threshold = 0.82;
    /// Keys shorter than this never fuzzy-merge (too risky).
    size_t min_fuzzy_length = 6;
  };

  AttributeDeduper() = default;
  explicit AttributeDeduper(Options options) : options_(options) {}

  /// Adds one surface observation; returns its cluster id.
  size_t Add(std::string_view surface);

  /// Returns the cluster id `surface` would map to, or SIZE_MAX if none
  /// exists yet (const lookup; no insertion). Uses the fuzzy fallback.
  size_t Find(std::string_view surface) const;

  /// Exact-key lookup only (no fuzzy fallback). Use where a false match is
  /// expensive — e.g. Algorithm 1's pattern induction, where one value
  /// string accidentally fuzzy-matching a seed would teach the extractor
  /// the *value* tag path and flood the attribute set.
  size_t FindExact(std::string_view surface) const;

  size_t num_clusters() const { return clusters_.size(); }

  /// Most frequently observed surface form of a cluster.
  const std::string& representative(size_t cluster) const;
  /// Total observations merged into a cluster.
  size_t support(size_t cluster) const { return clusters_[cluster].support; }
  /// The cluster's normalized key.
  const std::string& key(size_t cluster) const {
    return clusters_[cluster].key;
  }

 private:
  struct Cluster {
    std::string key;
    size_t support = 0;
    // surface -> count, to elect the representative.
    std::unordered_map<std::string, size_t> surfaces;
    std::string best_surface;
    size_t best_count = 0;
  };

  size_t FindByKey(const std::string& key) const;

  Options options_;
  std::vector<Cluster> clusters_;
  std::unordered_map<std::string, size_t> by_key_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_ATTRIBUTE_DEDUP_H_

// Template-induction baseline for DOM attribute extraction, in the style of
// RoadRunner (Crescenzi et al., SIGMOD'02) and EXALG (Arasu &
// Garcia-Molina, SIGMOD'03) — the unsupervised prior work the paper's
// related-work section positions Algorithm 1 against.
//
// Template methods need no seeds or entity sets: they align a site's pages
// and classify text positions by how their content varies across pages.
// This simplified reconstruction groups text nodes by their root tag path
// and classifies each group by its repetition profile:
//
//   - boilerplate: one distinct text repeated on (almost) every page
//     (nav links, footer) -> template furniture, dropped;
//   - label slot: many distinct texts, each repeated on several pages
//     (attribute names recur across entity pages) -> extracted attributes;
//   - value slot: texts mostly unique per occurrence (entity-specific
//     values) -> paired with the preceding label for triples.
//
// Known weaknesses (the reasons the paper gives for seeding instead):
// per-site re-derivation, confusion when values repeat across pages
// (popular categorical values look label-like), and the need for enough
// pages per site to observe the repetition profile at all. The
// `bench_baseline` harness measures exactly these failure modes against
// Algorithm 1.
#ifndef AKB_EXTRACT_TEMPLATE_EXTRACTOR_H_
#define AKB_EXTRACT_TEMPLATE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "extract/attribute_dedup.h"
#include "extract/confidence.h"
#include "extract/extraction.h"
#include "html/tag_path.h"
#include "synth/site_gen.h"

namespace akb::extract {

struct TemplateExtractorConfig {
  /// A path group is boilerplate (template furniture such as nav links and
  /// footer text) when every one of its distinct texts appears on at least
  /// this fraction of the site's pages: real labels only occur on the
  /// subset of pages that render that attribute.
  double boilerplate_page_fraction = 0.9;
  /// A path group is a label slot when its mean occurrences per distinct
  /// text is at least this (labels recur across pages).
  double min_label_repetition = 2.0;
  /// Minimum occurrences a group needs before it can be classified at all
  /// (few pages => no signal; groups below this are skipped).
  size_t min_group_occurrences = 4;
  /// Label texts longer than this many words are rejected.
  size_t max_label_tokens = 4;
  AttributeDeduper::Options dedup;
  ConfidenceCriterion confidence;
};

struct TemplateExtractionStats {
  size_t pages = 0;
  size_t path_groups = 0;
  size_t boilerplate_groups = 0;
  size_t label_groups = 0;
  size_t value_groups = 0;
};

struct TemplateExtraction {
  std::string class_name;
  /// Attribute surfaces extracted from label slots (deduplicated).
  std::vector<ExtractedAttribute> attributes;
  /// (entity, attribute, value) statements; the entity is the page's <h1>
  /// heading (template methods have no entity set to link against).
  std::vector<ExtractedTriple> triples;
  TemplateExtractionStats stats;
};

class TemplateBaselineExtractor {
 public:
  explicit TemplateBaselineExtractor(TemplateExtractorConfig config = {})
      : config_(std::move(config)) {}

  /// Runs template induction per site and unions the results.
  TemplateExtraction Extract(const std::vector<synth::WebSite>& sites) const;

 private:
  TemplateExtractorConfig config_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_TEMPLATE_EXTRACTOR_H_

// New entity creation: joint entity linking and discovery (paper §3.1).
//
// "Based on the discovered new attributes, we create new entities
// automatically ... we propose to solve entity-linking and entity-discovery
// jointly ... as well as a new distributed inference architecture, which is
// inherent in the MapReduce architectures, that avoids the synchronicity
// bottleneck."
//
// Mentions (entity surface forms appearing in extracted triples) are
// clustered by a canonical key in a single MapReduce job: the map phase
// emits (key, provenance) per mention with no cross-mention coordination
// (that is the synchronicity-bottleneck avoidance — no global linking state
// is consulted during the parallel phase); the reduce phase decides per
// cluster whether the mention links to an existing KB entity or has enough
// independent support to become a *new* entity.
#ifndef AKB_EXTRACT_ENTITY_CREATION_H_
#define AKB_EXTRACT_ENTITY_CREATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "extract/confidence.h"
#include "extract/extraction.h"

namespace akb::mapreduce {
class ThreadPool;
}  // namespace akb::mapreduce

namespace akb::extract {

struct EntityCreationConfig {
  /// Distinct sources that must mention an unlinked entity before it is
  /// created.
  size_t min_new_entity_support = 2;
  /// Worker threads for the MapReduce job.
  size_t num_workers = 2;
  /// Pool the job runs on when num_workers > 1. nullptr shares the
  /// process-wide mapreduce::SharedPool(num_workers).
  mapreduce::ThreadPool* pool = nullptr;
  ConfidenceCriterion confidence;
};

struct ResolvedEntity {
  std::string name;      ///< canonical surface (most frequent mention)
  bool is_new = false;   ///< discovered, not present in the KB
  size_t mentions = 0;   ///< total mentions
  size_t sources = 0;    ///< distinct sources mentioning it
  double confidence = 1.0;
};

struct EntityResolution {
  std::vector<ResolvedEntity> entities;
  /// normalized mention key -> index into `entities`.
  std::unordered_map<std::string, size_t> by_key;
  size_t linked_mentions = 0;
  size_t discovered_entities = 0;
  size_t dropped_mentions = 0;  ///< unlinked with insufficient support

  /// Index of the entity a mention resolves to, or SIZE_MAX.
  size_t Resolve(std::string_view mention) const;
};

class EntityCreator {
 public:
  explicit EntityCreator(EntityCreationConfig config = {})
      : config_(std::move(config)) {}

  /// Links the entity mentions of `triples` against `kb_entity_names` and
  /// creates well-supported new entities.
  EntityResolution Run(const std::vector<ExtractedTriple>& triples,
                       const std::vector<std::string>& kb_entity_names) const;

 private:
  EntityCreationConfig config_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_ENTITY_CREATION_H_

#include "extract/temporal_extractor.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <map>

#include "common/string_util.h"
#include "text/tokenize.h"

namespace akb::extract {

namespace {

// Parses a token as a year within bounds; -1 on failure.
int ParseYear(const std::string& token, int min_year, int max_year) {
  if (token.size() != 4 || !IsDigits(token)) return -1;
  int year = 0;
  std::from_chars(token.data(), token.data() + token.size(), year);
  if (year < min_year || year > max_year) return -1;
  return year;
}

struct Key {
  std::string entity;
  std::string attribute;

  bool operator<(const Key& other) const {
    if (entity != other.entity) return entity < other.entity;
    return attribute < other.attribute;
  }
};

}  // namespace

std::vector<std::string> TemporalExtractor::PatternSpecs() {
  return {
      // the optional "," absorbs the comma after the year
      "in [T] ?(,) the [A] of [E] was [V]",
      "[V] became the [A] of [E] in [T]",
  };
}

TemporalExtractor::TemporalExtractor(TemporalExtractorConfig config)
    : config_(std::move(config)) {
  for (const std::string& spec : PatternSpecs()) {
    auto pattern = text::Pattern::Parse(spec);
    assert(pattern.ok());
    patterns_.push_back(std::move(pattern).value());
  }
}

TemporalExtraction TemporalExtractor::Extract(
    const std::vector<std::string>& documents) const {
  TemporalExtraction out;

  // (entity, attribute) -> year -> value -> support.
  std::map<Key, std::map<int, std::map<std::string, size_t>>> cells;

  for (const std::string& document : documents) {
    for (const std::string& raw : text::SplitSentences(document)) {
      ++out.sentences_total;
      std::vector<std::string> tokens = text::TokenizeWords(raw);
      for (const text::Pattern& pattern : patterns_) {
        for (const text::PatternMatch& match :
             pattern.FindAll(tokens, config_.max_phrase_tokens)) {
          auto t = match.slots.find("T");
          auto a = match.slots.find("A");
          auto e = match.slots.find("E");
          auto v = match.slots.find("V");
          if (t == match.slots.end() || a == match.slots.end() ||
              e == match.slots.end() || v == match.slots.end()) {
            continue;
          }
          if (t->second.end - t->second.begin != 1) continue;
          int year = ParseYear(tokens[t->second.begin], config_.min_year,
                               config_.max_year);
          if (year < 0) continue;
          std::string entity = NormalizeSurface(
              text::JoinTokens(tokens, e->second.begin, e->second.end));
          std::string attribute = NormalizeSurface(
              text::JoinTokens(tokens, a->second.begin, a->second.end));
          std::string value = NormalizeSurface(
              text::JoinTokens(tokens, v->second.begin, v->second.end));
          if (entity.empty() || attribute.empty() || value.empty()) continue;
          ++out.pattern_hits;
          ++cells[Key{entity, attribute}][year][value];
        }
      }
    }
  }

  // --- Majority per (entity, attribute, year), then interval merging.
  for (const auto& [key, years] : cells) {
    std::vector<std::pair<int, TemporalObservation>> winners;
    for (const auto& [year, values] : years) {
      std::string best;
      size_t best_support = 0;
      for (const auto& [value, support] : values) {
        if (support > best_support ||
            (support == best_support && value < best)) {
          best = value;
          best_support = support;
        }
      }
      if (best_support < config_.min_support) continue;
      TemporalObservation observation;
      observation.entity = key.entity;
      observation.attribute = key.attribute;
      observation.value = best;
      observation.year = year;
      observation.support = best_support;
      winners.emplace_back(year, observation);
      out.observations.push_back(std::move(observation));
    }

    // Merge consecutive years with the same winner into intervals. A gap
    // (unmentioned year) between equal values is bridged; a value change
    // closes the interval.
    TemporalInterval current;
    bool open = false;
    for (const auto& [year, observation] : winners) {
      if (open && observation.value == current.value) {
        current.end_year = year;
        continue;
      }
      if (open) out.intervals.push_back(current);
      current.entity = key.entity;
      current.attribute = key.attribute;
      current.value = observation.value;
      current.start_year = year;
      current.end_year = year;
      open = true;
    }
    if (open) out.intervals.push_back(current);
  }
  return out;
}

std::string TemporalExtraction::ValueAt(const std::string& entity,
                                        const std::string& attribute,
                                        int year) const {
  std::string norm_entity = NormalizeSurface(entity);
  std::string norm_attribute = NormalizeSurface(attribute);
  for (const TemporalInterval& interval : intervals) {
    if (interval.entity == norm_entity &&
        interval.attribute == norm_attribute &&
        year >= interval.start_year && year <= interval.end_year) {
      return interval.value;
    }
  }
  return "";
}

}  // namespace akb::extract

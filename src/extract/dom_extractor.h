// DOM-tree attribute extraction — Algorithm 1 of the paper.
//
// Given a type T, a set of web sites about T, the entity set of T, and the
// seed attribute set A_T (from the query stream + existing KBs):
//
//   for each site, for each page containing >= 1 entity node E and one
//   non-entity node whose text is a seed attribute A:
//     1. extract the tag path(s) between E and A -> induced pattern set
//        (per page: "tag path patterns extracted from one Web page can
//        hardly be applied to another page");
//     2. compare every other non-entity node's E-to-node tag path with the
//        induced patterns;
//     3. similar paths => that node's text is a new attribute: add it to
//        A_T and remove its path from the page's tag-path set.
//   If |A_T| grew, continue with the site's pages; else (or when the
//   attribute budget is hit) move to the next site.
//
// Beyond the paper's schema discovery, the extractor also harvests the
// *value* paired with each recognized label node (the remaining text of the
// label's row element), emitting (entity, attribute, value) triples for the
// fusion phase.
#ifndef AKB_EXTRACT_DOM_EXTRACTOR_H_
#define AKB_EXTRACT_DOM_EXTRACTOR_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "extract/attribute_dedup.h"
#include "extract/confidence.h"
#include "extract/extraction.h"
#include "html/tag_path.h"
#include "mapreduce/thread_pool.h"
#include "synth/site_gen.h"

namespace akb::extract {

struct DomExtractorConfig {
  /// Minimum tag-path similarity to an induced pattern for a non-entity
  /// node to be recognized as an attribute label.
  double similarity_threshold = 0.9;
  /// Stop working a site once the seed set reaches this size (Algorithm 1's
  /// "certain threshold"); 0 = unlimited.
  size_t attribute_budget = 0;
  /// Maximum passes over one site's pages (each pass re-applies the grown
  /// seed set; the loop also stops as soon as a pass adds nothing).
  size_t max_passes_per_site = 4;
  /// Candidate label text longer than this many words is rejected.
  size_t max_label_tokens = 4;
  /// Entity discovery (paper §3.1, "create new entities automatically"):
  /// when a page contains no known entity node, fall back to the page's
  /// main heading (first <h1>) as a *candidate* entity mention and extract
  /// against it. Candidate-page triples get a reduced confidence; whether
  /// a candidate becomes a real entity is decided later by the joint
  /// linking + discovery step (EntityCreator), based on cross-source
  /// support.
  bool discover_entities = false;
  /// Confidence quality multiplier for candidate-entity pages.
  double candidate_quality = 0.8;
  /// Tag-path canonicalization.
  html::TagPathOptions path_options;
  AttributeDeduper::Options dedup;
  ConfidenceCriterion confidence;
};

/// One discovered attribute with its evidence.
struct DomAttribute {
  std::string surface;
  std::string canonical;
  size_t support = 0;          ///< label nodes matched across pages
  double best_similarity = 0;  ///< strongest tag-path similarity seen
  double confidence = 0;
};

struct DomExtractionStats {
  size_t pages_total = 0;
  size_t pages_with_entity = 0;
  size_t pages_used = 0;       ///< pages with >= 1 (E, seed A) pair
  size_t patterns_induced = 0;
  size_t nodes_considered = 0;
  size_t nodes_matched = 0;
  size_t passes = 0;
  /// Pages anchored on a candidate (heading) entity instead of a known one.
  size_t pages_with_candidate_anchor = 0;
};

struct DomExtraction {
  std::string class_name;
  /// Attributes NOT in the input seed set, discovered by pattern matching.
  std::vector<DomAttribute> new_attributes;
  /// (entity, attribute, value) statements harvested from label rows
  /// (both seed and new labels).
  std::vector<ExtractedTriple> triples;
  /// Entity mentions taken from page headings on pages without a known
  /// entity node (only when config.discover_entities is set). Input to the
  /// joint linking + discovery step.
  std::vector<std::string> candidate_entities;
  DomExtractionStats stats;
};

class DomTreeExtractor {
 public:
  explicit DomTreeExtractor(DomExtractorConfig config = {})
      : config_(std::move(config)) {}

  /// Runs Algorithm 1 over the given sites.
  ///
  /// `entity_names`: the entity set of T (from Freebase, in the paper).
  /// `seed_attributes`: A_T seeds from the query stream and existing KBs.
  DomExtraction Extract(const std::vector<synth::WebSite>& sites,
                        const std::vector<std::string>& entity_names,
                        const std::vector<std::string>& seed_attributes) const;

  /// Convenience overload for raw (url, html) pages of a single site.
  DomExtraction ExtractPages(const std::string& class_name,
                             const std::vector<std::string>& page_html,
                             const std::string& site_domain,
                             const std::vector<std::string>& entity_names,
                             const std::vector<std::string>& seed_attributes)
      const;

  /// One map task of the sharded mode: Algorithm 1 over a single site with
  /// *site-local* seed growth (CERES-style — a discovery on this site does
  /// not seed any other). Reads only const state, so sites extract
  /// concurrently.
  DomExtraction ExtractSite(
      const synth::WebSite& site,
      const std::vector<std::string>& entity_names,
      const std::vector<std::string>& seed_attributes) const;

  /// Deterministic ordered merge of per-site shards (the reduce of the
  /// sharded mode). In shard order: attributes re-cluster through a fresh
  /// deduper (support sums, best similarity maxes, confidence recomputed
  /// from merged evidence), triples concatenate with their attribute
  /// surfaces remapped to the merged representatives, stats sum.
  DomExtraction MergeSiteExtractions(
      std::vector<DomExtraction> shards,
      const std::vector<std::string>& seed_attributes) const;

  /// Parallel variant: ExtractSite per site on `pool`, then
  /// MergeSiteExtractions in site order. Shards never communicate, so the
  /// result is bit-identical for any worker count, including the inline
  /// pool == nullptr path. Note the site-local seed growth makes this a
  /// deliberately different (not just reordered) computation from
  /// Extract().
  DomExtraction ExtractSharded(
      const std::vector<synth::WebSite>& sites,
      const std::vector<std::string>& entity_names,
      const std::vector<std::string>& seed_attributes,
      mapreduce::ThreadPool* pool) const;

 private:
  /// Pointer-based core of Extract (lets ExtractSite run one site without
  /// copying it).
  DomExtraction ExtractSites(
      const std::vector<const synth::WebSite*>& sites,
      const std::vector<std::string>& entity_names,
      const std::vector<std::string>& seed_attributes) const;

  DomExtractorConfig config_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_DOM_EXTRACTOR_H_

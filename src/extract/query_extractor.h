// Attribute extraction from the query stream (paper §4, Table 3).
//
// "We propose an improved query stream extraction technique by using more
// patterns, such as 'what/how/when/who is the A of (the/a/an) E',
// 'the A of (the/a/an) E' and 'E's A', and a set of filtering rules ...
// For entity recognition, each of these classes is specified as a set of
// representative entities."
//
// The extractor scans the stream once: a record is *relevant* to a class if
// it mentions one of the class's representative entities; attribute
// candidates are captured by the pattern family with the [E] slot anchored
// to a recognized entity; filter rules drop meaningless captures; candidates
// become *credible attributes* when their support (distinct records /
// distinct entities) passes the credibility thresholds.
#ifndef AKB_EXTRACT_QUERY_EXTRACTOR_H_
#define AKB_EXTRACT_QUERY_EXTRACTOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "extract/attribute_dedup.h"
#include "extract/confidence.h"
#include "extract/extraction.h"
#include "mapreduce/thread_pool.h"
#include "text/pattern.h"

namespace akb::extract {

struct QueryExtractorConfig {
  /// Minimal distinct query records supporting a credible attribute.
  size_t min_record_support = 3;
  /// Minimal distinct entities the attribute was asked about.
  size_t min_entity_support = 2;
  /// Filter rule: attribute phrases longer than this are dropped.
  size_t max_attribute_tokens = 4;
  /// Filter rule: junk words that disqualify a candidate attribute phrase.
  std::vector<std::string> junk_words = {
      "reviews", "photos", "tickets", "online", "wiki",  "news",
      "deals",   "buy",    "cheap",   "free",   "login", "official"};
  AttributeDeduper::Options dedup;
  ConfidenceCriterion confidence;
};

/// Per-class result (one Table 3 row).
struct QueryClassExtraction {
  std::string class_name;
  /// Query records mentioning one of the class's entities.
  size_t relevant_records = 0;
  /// Records where a pattern captured an (A, E) pair.
  size_t pattern_hits = 0;
  /// Candidates dropped by the filter rules.
  size_t filtered_out = 0;
  std::vector<ExtractedAttribute> credible_attributes;
};

struct QueryExtraction {
  size_t total_records = 0;
  std::vector<QueryClassExtraction> classes;

  const QueryClassExtraction* FindClass(std::string_view name) const;
};

class QueryStreamExtractor {
 public:
  explicit QueryStreamExtractor(QueryExtractorConfig config = {});

  /// Registers a class by its representative entity set (entity surface
  /// names; matching is token-based and case-insensitive).
  void AddClass(std::string class_name,
                const std::vector<std::string>& entity_names);

  /// Scans the stream (strings only; no ledger access).
  QueryExtraction Extract(const std::vector<std::string>& queries) const;

  /// Parallel variant: queries are tokenized once in parallel ranges, then
  /// each registered class scans the stream as its own task (per-class
  /// state is fully independent, so this is the serial computation
  /// reordered, bit-identical at every worker count — pool == nullptr runs
  /// inline).
  QueryExtraction ExtractSharded(const std::vector<std::string>& queries,
                                 mapreduce::ThreadPool* pool) const;

  /// The paper's pattern family, exposed for tests.
  static std::vector<std::string> PatternSpecs();

 private:
  struct ClassEntry {
    std::string name;
    /// first token of each name variant -> variant indices (prefilter).
    std::unordered_map<std::string, std::vector<size_t>> by_first_token;
    /// Token sequences of the variants (full name and article-stripped).
    std::vector<std::vector<std::string>> entity_tokens;
    /// Entity ordinal of each variant (two variants of one entity share
    /// the ordinal, so entity-support counting is per entity).
    std::vector<size_t> entity_of_variant;
  };

  /// Index of the entity occupying tokens [begin, end) or SIZE_MAX.
  static size_t MatchEntity(const ClassEntry& cls,
                            const std::vector<std::string>& tokens,
                            size_t begin, size_t end);
  /// True if the class has an entity starting at any position (relevance).
  static bool MentionsEntity(const ClassEntry& cls,
                             const std::vector<std::string>& tokens);

  bool PassesFilters(const std::vector<std::string>& tokens, size_t begin,
                     size_t end) const;

  /// Runs one class's full scan over the pre-tokenized stream and returns
  /// its finalized extraction (reads only this-> state and `tokens`).
  QueryClassExtraction ScanClass(
      size_t class_index,
      const std::vector<std::vector<std::string>>& tokens) const;

  QueryExtractorConfig config_;
  std::vector<text::Pattern> patterns_;
  std::vector<ClassEntry> classes_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_QUERY_EXTRACTOR_H_

// Schema alignment by value overlap.
//
// The paper's §1 lists *schema alignment* (Bellahsene et al., its ref [4])
// among the four classic integration steps, and its §3 pipeline must
// identify "misspellings, synonyms, and sub-attributes". Surface
// normalization (AttributeDeduper) merges casing/styling variants and
// misspellings, but true synonyms — "total budget" vs "overall cost" —
// share no surface signal at all. What they do share is *values*: on the
// entities both attributes describe, they agree.
//
// The aligner builds, per attribute, an entity -> value-set map from
// extracted triples, and aligns attribute pairs (across two triple sets, or
// within one) whose value agreement over shared entities is high. Aligned
// clusters are merged on top of the surface-level clusters, recovering the
// true attribute count that string matching alone overcounts.
#ifndef AKB_EXTRACT_SCHEMA_ALIGNMENT_H_
#define AKB_EXTRACT_SCHEMA_ALIGNMENT_H_

#include <string>
#include <vector>

#include "extract/extraction.h"
#include "synth/hierarchy.h"

namespace akb::extract {

struct SchemaAlignmentConfig {
  /// Minimum entities both attributes describe.
  size_t min_shared_entities = 3;
  /// Minimum fraction of shared entities on which the value sets agree
  /// (intersect) for the pair to align.
  double min_agreement = 0.65;
};

/// One aligned attribute pair.
struct AlignedPair {
  std::string class_name;
  std::string attribute_a;  ///< canonical key of side A
  std::string attribute_b;  ///< canonical key of side B
  size_t shared_entities = 0;
  double agreement = 0.0;
};

struct SchemaAlignment {
  std::vector<AlignedPair> pairs;

  /// Number of merged attribute clusters over `keys` after applying the
  /// aligned pairs as union-find edges (keys absent from any pair count as
  /// singletons).
  size_t MergedCount(const std::vector<std::string>& keys) const;
};

/// Aligns attributes of `a` against attributes of `b` per class. Attribute
/// identity on each side is the canonical AttributeKey of the triple's
/// attribute surface; values are compared after NormalizeSurface.
SchemaAlignment AlignSchemas(const std::vector<ExtractedTriple>& a,
                             const std::vector<ExtractedTriple>& b,
                             const SchemaAlignmentConfig& config = {});

/// A detected sub-attribute relation: on shared entities, `sub`'s value is
/// consistently an ancestor (coarser version) of `super`'s value in the
/// value hierarchy — e.g. "headquarters country" vs "headquarters". The
/// paper (§3) requires sub-attributes to be identified alongside synonyms
/// and misspellings so they are not fused as conflicts.
struct SubAttribute {
  std::string class_name;
  std::string sub;        ///< canonical key of the coarser attribute
  std::string super;      ///< canonical key of the finer attribute
  size_t shared_entities = 0;
  /// Fraction of shared entities where sub's value is a strict ancestor.
  double ancestor_rate = 0.0;
};

struct SubAttributeConfig {
  size_t min_shared_entities = 3;
  /// Minimum fraction of shared entities with a strict-ancestor value.
  double min_ancestor_rate = 0.6;
};

/// Detects sub-attribute pairs within one triple set, using `hierarchy` to
/// test ancestry between (title-cased) values.
std::vector<SubAttribute> DetectSubAttributes(
    const std::vector<ExtractedTriple>& triples,
    const synth::ValueHierarchy& hierarchy,
    const SubAttributeConfig& config = {});

}  // namespace akb::extract

#endif  // AKB_EXTRACT_SCHEMA_ALIGNMENT_H_

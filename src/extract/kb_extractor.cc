#include "extract/kb_extractor.h"

#include <map>
#include <unordered_map>

#include "obs/metrics.h"

namespace akb::extract {

const KbClassExtraction* KbExtraction::FindClass(std::string_view name) const {
  for (const auto& c : classes) {
    if (c.class_name == name) return &c;
  }
  return nullptr;
}

KbClassExtraction ExistingKbExtractor::ExtractClass(
    const synth::KbSnapshot& kb, const synth::KbClass& cls) const {
  KbClassExtraction out;
  out.class_name = cls.name;

  // Declared schema size after dedup (variants inside the schema collapse).
  {
    AttributeDeduper declared_dedup(config_.dedup);
    for (const auto& attribute : cls.attributes) {
      if (!attribute.declared) continue;
      if (!attribute.surfaces.empty()) {
        declared_dedup.Add(attribute.surfaces.front());
      }
    }
    out.declared_attributes = declared_dedup.num_clusters();
  }

  // Instance layer: every surface used by a fact.
  AttributeDeduper dedup(config_.dedup);
  for (const synth::KbFact& fact : cls.facts) {
    dedup.Add(fact.surface);
  }
  // Declared attributes belong to the mined set even when unused on
  // instances (the schema itself is evidence).
  for (const auto& attribute : cls.attributes) {
    if (attribute.declared && !attribute.surfaces.empty()) {
      dedup.Add(attribute.surfaces.front());
    }
  }

  for (size_t c = 0; c < dedup.num_clusters(); ++c) {
    if (dedup.support(c) < config_.min_support) continue;
    ExtractedAttribute attribute;
    attribute.class_name = cls.name;
    attribute.surface = dedup.representative(c);
    attribute.canonical = dedup.key(c);
    attribute.support = dedup.support(c);
    attribute.source = kb.name;
    attribute.extractor = rdf::ExtractorKind::kExistingKb;
    attribute.confidence = config_.confidence.Score(
        rdf::ExtractorKind::kExistingKb, attribute.support);
    out.attributes.push_back(std::move(attribute));
  }
  return out;
}

KbExtraction ExistingKbExtractor::Extract(const synth::KbSnapshot& kb) const {
  KbExtraction extraction;
  extraction.kb_name = kb.name;
  for (const auto& cls : kb.classes) {
    extraction.classes.push_back(ExtractClass(kb, cls));
  }
  return extraction;
}

KbExtraction ExistingKbExtractor::Combine(
    const std::vector<const synth::KbSnapshot*>& kbs) const {
  KbExtraction combined;
  for (const auto* kb : kbs) {
    if (!combined.kb_name.empty()) combined.kb_name += "+";
    combined.kb_name += kb->name;
  }

  // class name -> shared deduper fed by each KB's mined attributes.
  std::map<std::string, AttributeDeduper> dedupers;
  std::map<std::string, std::unordered_map<size_t, ExtractedAttribute>>
      merged;

  for (const auto* kb : kbs) {
    KbExtraction extraction = Extract(*kb);
    for (const auto& cls : extraction.classes) {
      auto [it, inserted] =
          dedupers.try_emplace(cls.class_name, config_.dedup);
      AttributeDeduper& dedup = it->second;
      auto& attrs = merged[cls.class_name];
      for (const auto& attribute : cls.attributes) {
        size_t cluster = dedup.Add(attribute.surface);
        auto found = attrs.find(cluster);
        if (found == attrs.end()) {
          ExtractedAttribute copy = attribute;
          copy.source = combined.kb_name;
          attrs.emplace(cluster, std::move(copy));
        } else {
          // Cross-KB duplicate: accumulate support, keep max confidence.
          found->second.support += attribute.support;
          found->second.confidence = config_.confidence.Score(
              rdf::ExtractorKind::kExistingKb, found->second.support);
        }
      }
    }
  }

  for (auto& [class_name, attrs] : merged) {
    KbClassExtraction cls;
    cls.class_name = class_name;
    for (auto& [cluster, attribute] : attrs) {
      cls.attributes.push_back(std::move(attribute));
    }
    combined.classes.push_back(std::move(cls));
  }
  return combined;
}

std::vector<ExtractedTriple> ExistingKbExtractor::ExtractTriples(
    const synth::KbSnapshot& kb) const {
  std::vector<ExtractedTriple> triples;
  for (const auto& cls : kb.classes) {
    size_t class_start = triples.size();
    // Surface -> canonical cluster representative, per class.
    AttributeDeduper dedup(config_.dedup);
    for (const synth::KbFact& fact : cls.facts) dedup.Add(fact.surface);

    // Resolve world entity ids to their surface names.
    std::unordered_map<synth::EntityId, const std::string*> names;
    for (size_t i = 0; i < cls.entities.size(); ++i) {
      if (i < cls.entity_names.size()) {
        names.emplace(cls.entities[i], &cls.entity_names[i]);
      }
    }
    for (const synth::KbFact& fact : cls.facts) {
      ExtractedTriple triple;
      triple.class_name = cls.name;
      auto name_it = names.find(fact.entity);
      triple.entity = name_it == names.end()
                          ? "entity#" + std::to_string(fact.entity)
                          : *name_it->second;
      size_t cluster = dedup.Find(fact.surface);
      triple.attribute = cluster == SIZE_MAX ? fact.surface
                                             : dedup.representative(cluster);
      triple.value = fact.value;
      triple.source = kb.name;
      triple.extractor = rdf::ExtractorKind::kExistingKb;
      triple.confidence =
          config_.confidence.Score(rdf::ExtractorKind::kExistingKb, 1);
      triples.push_back(std::move(triple));
    }
    static obs::CounterFamily per_class_family("akb.extract.kb.claims.");
    per_class_family.Add(cls.name, int64_t(triples.size() - class_start));
  }
  AKB_COUNTER_ADD("akb.extract.kb.claims", int64_t(triples.size()));
  return triples;
}

}  // namespace akb::extract

#include "extract/schema_alignment.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "extract/attribute_dedup.h"

namespace akb::extract {

namespace {

// class -> attribute key -> entity (normalized) -> value set (normalized).
using ValueMap =
    std::map<std::string,
             std::map<std::string,
                      std::unordered_map<std::string,
                                         std::unordered_set<std::string>>>>;

ValueMap BuildValueMap(const std::vector<ExtractedTriple>& triples) {
  ValueMap out;
  for (const ExtractedTriple& t : triples) {
    out[t.class_name][AttributeKey(t.attribute)]
       [NormalizeSurface(t.entity)]
           .insert(NormalizeSurface(t.value));
  }
  return out;
}

}  // namespace

SchemaAlignment AlignSchemas(const std::vector<ExtractedTriple>& a,
                             const std::vector<ExtractedTriple>& b,
                             const SchemaAlignmentConfig& config) {
  SchemaAlignment out;
  ValueMap map_a = BuildValueMap(a);
  ValueMap map_b = BuildValueMap(b);

  for (const auto& [class_name, attrs_a] : map_a) {
    auto class_b = map_b.find(class_name);
    if (class_b == map_b.end()) continue;
    for (const auto& [key_a, entities_a] : attrs_a) {
      for (const auto& [key_b, entities_b] : class_b->second) {
        if (key_a == key_b) continue;  // identical keys need no alignment
        // Iterate the smaller side.
        const auto& smaller =
            entities_a.size() <= entities_b.size() ? entities_a : entities_b;
        const auto& larger =
            entities_a.size() <= entities_b.size() ? entities_b : entities_a;
        size_t shared = 0, agree = 0;
        for (const auto& [entity, values] : smaller) {
          auto other = larger.find(entity);
          if (other == larger.end()) continue;
          ++shared;
          bool intersects = false;
          for (const std::string& value : values) {
            if (other->second.count(value)) {
              intersects = true;
              break;
            }
          }
          if (intersects) ++agree;
        }
        if (shared < config.min_shared_entities) continue;
        double agreement =
            static_cast<double>(agree) / static_cast<double>(shared);
        if (agreement < config.min_agreement) continue;
        AlignedPair pair;
        pair.class_name = class_name;
        pair.attribute_a = key_a;
        pair.attribute_b = key_b;
        pair.shared_entities = shared;
        pair.agreement = agreement;
        out.pairs.push_back(std::move(pair));
      }
    }
  }
  std::sort(out.pairs.begin(), out.pairs.end(),
            [](const AlignedPair& x, const AlignedPair& y) {
              if (x.class_name != y.class_name) {
                return x.class_name < y.class_name;
              }
              if (x.attribute_a != y.attribute_a) {
                return x.attribute_a < y.attribute_a;
              }
              return x.attribute_b < y.attribute_b;
            });
  return out;
}

std::vector<SubAttribute> DetectSubAttributes(
    const std::vector<ExtractedTriple>& triples,
    const synth::ValueHierarchy& hierarchy,
    const SubAttributeConfig& config) {
  std::vector<SubAttribute> out;
  ValueMap map = BuildValueMap(triples);

  auto resolve = [&hierarchy](const std::string& value) {
    synth::HierarchyNodeId node = hierarchy.Find(value);
    if (node == synth::kNoHierarchyNode) {
      node = hierarchy.Find(TitleCase(ToLower(value)));
    }
    return node;
  };

  for (const auto& [class_name, attrs] : map) {
    for (const auto& [key_sub, entities_sub] : attrs) {
      for (const auto& [key_super, entities_super] : attrs) {
        if (key_sub == key_super) continue;
        size_t shared = 0, ancestor = 0;
        for (const auto& [entity, sub_values] : entities_sub) {
          auto other = entities_super.find(entity);
          if (other == entities_super.end()) continue;
          // Both sides must resolve in the hierarchy.
          bool counted = false, strict = false;
          for (const std::string& sv : sub_values) {
            synth::HierarchyNodeId sub_node = resolve(sv);
            if (sub_node == synth::kNoHierarchyNode) continue;
            for (const std::string& pv : other->second) {
              synth::HierarchyNodeId super_node = resolve(pv);
              if (super_node == synth::kNoHierarchyNode) continue;
              counted = true;
              if (sub_node != super_node &&
                  hierarchy.IsAncestorOrSelf(sub_node, super_node)) {
                strict = true;
              }
            }
          }
          if (counted) {
            ++shared;
            if (strict) ++ancestor;
          }
        }
        if (shared < config.min_shared_entities) continue;
        double rate =
            static_cast<double>(ancestor) / static_cast<double>(shared);
        if (rate < config.min_ancestor_rate) continue;
        SubAttribute sub;
        sub.class_name = class_name;
        sub.sub = key_sub;
        sub.super = key_super;
        sub.shared_entities = shared;
        sub.ancestor_rate = rate;
        out.push_back(std::move(sub));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SubAttribute& x, const SubAttribute& y) {
              if (x.class_name != y.class_name) {
                return x.class_name < y.class_name;
              }
              if (x.sub != y.sub) return x.sub < y.sub;
              return x.super < y.super;
            });
  return out;
}

size_t SchemaAlignment::MergedCount(
    const std::vector<std::string>& keys) const {
  // Union-find over the key set with aligned pairs as edges.
  std::unordered_map<std::string, size_t> index;
  for (const std::string& key : keys) {
    index.emplace(key, index.size());
  }
  std::vector<size_t> parent(index.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const AlignedPair& pair : pairs) {
    auto a = index.find(pair.attribute_a);
    auto b = index.find(pair.attribute_b);
    if (a == index.end() || b == index.end()) continue;
    parent[find(a->second)] = find(b->second);
  }
  std::unordered_set<size_t> roots;
  for (size_t i = 0; i < parent.size(); ++i) roots.insert(find(i));
  return roots.size();
}

}  // namespace akb::extract

#include "extract/taxonomy_extractor.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "common/string_util.h"
#include "text/tokenize.h"

namespace akb::extract {

namespace {

// Head-noun selection per pattern: English noun phrases are head-final, and
// the three patterns expose the category NP differently.
enum class HeadRule {
  kWholePhrase,  // "[X] is a [Y<.]"  -> the whole captured phrase
  kLastToken,    // "[Y] such as"      -> lazy capture may drag a verb in;
                 //                       keep the head (last) token
  kFirstToken,   // "and other [Y...]" -> greedy capture may run on; keep
                 //                       the first token
};

struct CompiledPattern {
  text::Pattern pattern;
  HeadRule head;
};

std::string Singular(const std::string& token) {
  if (token.size() > 3 && EndsWith(token, "ies")) {
    return token.substr(0, token.size() - 3) + "y";
  }
  if (token.size() > 3 && EndsWith(token, "ses")) {
    return token.substr(0, token.size() - 2);
  }
  if (token.size() > 3 && EndsWith(token, "s") && !EndsWith(token, "ss")) {
    return token.substr(0, token.size() - 1);
  }
  return token;
}

}  // namespace

std::vector<std::string> TaxonomyExtractor::PatternSpecs() {
  return {
      "[X] is (a|an) [Y]",
      "[Y] such as [X]",
      "[X] and other [Y]",
  };
}

std::string TaxonomyExtractor::NormalizeTerm(const std::string& surface) {
  std::vector<std::string> tokens =
      SplitWhitespace(NormalizeSurface(surface));
  // Strip a leading article.
  if (!tokens.empty() &&
      (tokens[0] == "the" || tokens[0] == "a" || tokens[0] == "an")) {
    tokens.erase(tokens.begin());
  }
  if (tokens.empty()) return "";
  // Singularize the head (last) token.
  tokens.back() = Singular(tokens.back());
  return Join(tokens, " ");
}

TaxonomyExtractor::TaxonomyExtractor(TaxonomyExtractorConfig config)
    : config_(std::move(config)) {
  for (const std::string& spec : PatternSpecs()) {
    auto pattern = text::Pattern::Parse(spec);
    assert(pattern.ok());
    patterns_.push_back(std::move(pattern).value());
  }
}

ExtractedTaxonomy TaxonomyExtractor::Extract(
    const std::vector<std::string>& documents) const {
  ExtractedTaxonomy out;
  static const HeadRule kRules[] = {HeadRule::kWholePhrase,
                                    HeadRule::kLastToken,
                                    HeadRule::kFirstToken};

  std::map<std::pair<std::string, std::string>, size_t> support;
  for (const std::string& document : documents) {
    for (const std::string& raw : text::SplitSentences(document)) {
      ++out.sentences_total;
      std::vector<std::string> tokens = text::TokenizeWords(raw);
      for (size_t p = 0; p < patterns_.size(); ++p) {
        for (const text::PatternMatch& match :
             patterns_[p].FindAll(tokens, config_.max_phrase_tokens)) {
          auto x = match.slots.find("X");
          auto y = match.slots.find("Y");
          if (x == match.slots.end() || y == match.slots.end()) continue;

          std::string instance =
              text::JoinTokens(tokens, x->second.begin, x->second.end);
          std::string category;
          switch (kRules[p]) {
            case HeadRule::kWholePhrase:
              category = text::JoinTokens(tokens, y->second.begin,
                                          y->second.end);
              break;
            case HeadRule::kLastToken:
              category = tokens[y->second.end - 1];
              break;
            case HeadRule::kFirstToken:
              category = tokens[y->second.begin];
              break;
          }
          std::string norm_instance = NormalizeTerm(instance);
          std::string norm_category = NormalizeTerm(category);
          if (norm_instance.empty() || norm_category.empty()) continue;
          if (norm_instance == norm_category) continue;
          ++out.pattern_hits;
          ++support[{norm_instance, norm_category}];
        }
      }
    }
  }

  // Instance totals for the Probase-style plausibility.
  std::map<std::string, size_t> instance_total;
  for (const auto& [edge, count] : support) {
    if (count >= config_.min_edge_support) {
      instance_total[edge.first] += count;
    }
  }
  for (const auto& [edge, count] : support) {
    if (count < config_.min_edge_support) continue;
    IsaEdge isa;
    isa.instance = edge.first;
    isa.category = edge.second;
    isa.support = count;
    isa.probability =
        static_cast<double>(count) /
        static_cast<double>(instance_total[edge.first]);
    out.edges.push_back(std::move(isa));
  }
  std::sort(out.edges.begin(), out.edges.end(),
            [](const IsaEdge& a, const IsaEdge& b) {
              if (a.instance != b.instance) return a.instance < b.instance;
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.category < b.category;
            });
  return out;
}

std::vector<IsaEdge> ExtractedTaxonomy::CategoriesOf(
    const std::string& instance) const {
  std::string norm = TaxonomyExtractor::NormalizeTerm(instance);
  std::vector<IsaEdge> out;
  for (const IsaEdge& edge : edges) {
    if (edge.instance == norm) out.push_back(edge);
  }
  std::sort(out.begin(), out.end(), [](const IsaEdge& a, const IsaEdge& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.category < b.category;
  });
  return out;
}

std::string ExtractedTaxonomy::BestCategoryOf(
    const std::string& instance) const {
  auto categories = CategoriesOf(instance);
  return categories.empty() ? "" : categories.front().category;
}

std::vector<std::string> ExtractedTaxonomy::InstancesOf(
    const std::string& category) const {
  std::string norm = TaxonomyExtractor::NormalizeTerm(category);
  std::vector<std::string> out;
  for (const IsaEdge& edge : edges) {
    if (edge.category == norm) out.push_back(edge.instance);
  }
  return out;
}

bool ExtractedTaxonomy::IsDescendant(const std::string& descendant,
                                     const std::string& ancestor) const {
  std::string target = TaxonomyExtractor::NormalizeTerm(ancestor);
  std::set<std::string> frontier{TaxonomyExtractor::NormalizeTerm(descendant)};
  std::set<std::string> visited;
  while (!frontier.empty()) {
    std::string current = *frontier.begin();
    frontier.erase(frontier.begin());
    if (!visited.insert(current).second) continue;
    for (const IsaEdge& edge : edges) {
      if (edge.instance != current) continue;
      if (edge.category == target) return true;
      frontier.insert(edge.category);
    }
  }
  return false;
}

}  // namespace akb::extract

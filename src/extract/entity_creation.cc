#include "extract/entity_creation.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "mapreduce/engine.h"

namespace akb::extract {

namespace {

// Canonical mention key: normalized surface with a leading article removed,
// so "The Silent Harbor" and "Silent Harbor" cluster together.
std::string MentionKey(std::string_view mention) {
  std::string norm = NormalizeSurface(mention);
  for (const char* article : {"the ", "a ", "an "}) {
    if (StartsWith(norm, article)) {
      return norm.substr(std::string_view(article).size());
    }
  }
  return norm;
}

struct MentionEvidence {
  std::string surface;
  std::string source;
};

struct ClusterResult {
  std::string key;
  std::string best_surface;
  size_t mentions = 0;
  size_t sources = 0;
};

}  // namespace

size_t EntityResolution::Resolve(std::string_view mention) const {
  auto it = by_key.find(MentionKey(mention));
  return it == by_key.end() ? SIZE_MAX : it->second;
}

EntityResolution EntityCreator::Run(
    const std::vector<ExtractedTriple>& triples,
    const std::vector<std::string>& kb_entity_names) const {
  EntityResolution out;

  std::unordered_map<std::string, std::string> kb_by_key;  // key -> name
  for (const std::string& name : kb_entity_names) {
    kb_by_key.emplace(MentionKey(name), name);
  }

  // One MapReduce job clusters mentions by key. Map: stateless per triple.
  mapreduce::JobOptions options;
  options.num_workers = config_.num_workers;
  options.pool = config_.pool;
  auto results =
      mapreduce::RunJob<ExtractedTriple, std::string, MentionEvidence,
                        ClusterResult>(
          triples,
          [](const ExtractedTriple& t,
             mapreduce::Emitter<std::string, MentionEvidence>* emit) {
            if (t.entity.empty()) return;
            emit->Emit(MentionKey(t.entity),
                       MentionEvidence{t.entity, t.source});
          },
          [](const std::string& key,
             const std::vector<MentionEvidence>& evidence) {
            ClusterResult cluster;
            cluster.key = key;
            cluster.mentions = evidence.size();
            std::unordered_map<std::string, size_t> surface_counts;
            std::unordered_set<std::string> sources;
            for (const auto& e : evidence) {
              ++surface_counts[e.surface];
              sources.insert(e.source);
            }
            cluster.sources = sources.size();
            size_t best = 0;
            for (const auto& [surface, count] : surface_counts) {
              if (count > best ||
                  (count == best && surface < cluster.best_surface)) {
                best = count;
                cluster.best_surface = surface;
              }
            }
            return cluster;
          },
          options);

  // Deterministic order regardless of partitioning.
  std::sort(results.begin(), results.end(),
            [](const ClusterResult& a, const ClusterResult& b) {
              return a.key < b.key;
            });

  for (const ClusterResult& cluster : results) {
    auto kb_it = kb_by_key.find(cluster.key);
    if (kb_it != kb_by_key.end()) {
      ResolvedEntity entity;
      entity.name = kb_it->second;  // canonical KB spelling wins
      entity.is_new = false;
      entity.mentions = cluster.mentions;
      entity.sources = cluster.sources;
      entity.confidence = 1.0;
      out.by_key.emplace(cluster.key, out.entities.size());
      out.entities.push_back(std::move(entity));
      out.linked_mentions += cluster.mentions;
    } else if (cluster.sources >= config_.min_new_entity_support) {
      ResolvedEntity entity;
      entity.name = cluster.best_surface;
      entity.is_new = true;
      entity.mentions = cluster.mentions;
      entity.sources = cluster.sources;
      entity.confidence = config_.confidence.Score(
          rdf::ExtractorKind::kOther, cluster.sources);
      out.by_key.emplace(cluster.key, out.entities.size());
      out.entities.push_back(std::move(entity));
      ++out.discovered_entities;
    } else {
      out.dropped_mentions += cluster.mentions;
    }
  }

  // KB entities never mentioned still exist (linkable later).
  for (const auto& [key, name] : kb_by_key) {
    if (out.by_key.count(key)) continue;
    ResolvedEntity entity;
    entity.name = name;
    entity.is_new = false;
    out.by_key.emplace(key, out.entities.size());
    out.entities.push_back(std::move(entity));
  }
  return out;
}

}  // namespace akb::extract

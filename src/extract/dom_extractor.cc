#include "extract/dom_extractor.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "extract/row_harvest.h"
#include "html/dom.h"
#include "obs/metrics.h"
#include "text/tokenize.h"

namespace akb::extract {

namespace {

// Candidate label sanity filters (structure can match accidentally; the
// text must still look like an attribute name).
bool LabelTextAcceptable(const std::string& text, size_t max_tokens) {
  auto tokens = text::TokenizeWords(text);
  if (tokens.empty() || tokens.size() > max_tokens) return false;
  bool all_digits = true;
  for (const auto& token : tokens) {
    if (!IsDigits(token)) all_digits = false;
  }
  return !all_digits;
}

}  // namespace

DomExtraction DomTreeExtractor::Extract(
    const std::vector<synth::WebSite>& sites,
    const std::vector<std::string>& entity_names,
    const std::vector<std::string>& seed_attributes) const {
  std::vector<const synth::WebSite*> ptrs;
  ptrs.reserve(sites.size());
  for (const synth::WebSite& site : sites) ptrs.push_back(&site);
  return ExtractSites(ptrs, entity_names, seed_attributes);
}

DomExtraction DomTreeExtractor::ExtractSites(
    const std::vector<const synth::WebSite*>& sites,
    const std::vector<std::string>& entity_names,
    const std::vector<std::string>& seed_attributes) const {
  DomExtraction out;
  if (!sites.empty()) out.class_name = sites.front()->class_name;

  // Normalized entity set for entity-node recognition.
  std::unordered_map<std::string, std::string> entities;  // norm -> name
  for (const std::string& name : entity_names) {
    entities.emplace(NormalizeSurface(name), name);
  }

  // The growing seed set A_T. The deduper holds seeds and discoveries; we
  // remember which clusters were input seeds to report only *new* ones.
  AttributeDeduper dedup(config_.dedup);
  for (const std::string& seed : seed_attributes) dedup.Add(seed);
  size_t input_clusters = dedup.num_clusters();

  std::map<size_t, DomAttribute> discovered;  // cluster -> evidence
  // Per-triple anchor quality (1.0 for known-entity pages, reduced for
  // candidate-entity pages), parallel to out.triples until the dedup pass.
  std::vector<double> triple_quality;

  for (const synth::WebSite* site_ptr : sites) {
    const synth::WebSite& site = *site_ptr;
    if (config_.attribute_budget &&
        dedup.num_clusters() >= config_.attribute_budget) {
      break;
    }
    // Parse every page of the site once.
    std::vector<html::Document> docs;
    docs.reserve(site.pages.size());
    for (const auto& page : site.pages) {
      docs.push_back(html::ParseHtml(page.html));
      ++out.stats.pages_total;
    }

    bool grew = true;
    for (size_t pass = 0; pass < config_.max_passes_per_site && grew; ++pass) {
      grew = false;
      ++out.stats.passes;

      for (size_t p = 0; p < docs.size(); ++p) {
        const html::Document& doc = docs[p];
        std::vector<const html::Node*> texts = doc.TextNodes();

        // --- Classify entity vs non-entity nodes; pick the deepest entity
        // node as the anchor E.
        const html::Node* anchor = nullptr;
        std::string anchor_entity;
        bool anchor_is_candidate = false;
        std::vector<const html::Node*> non_entity;
        for (const html::Node* node : texts) {
          std::string norm = NormalizeSurface(node->text());
          auto it = entities.find(norm);
          if (it != entities.end()) {
            if (anchor == nullptr || node->Depth() > anchor->Depth()) {
              anchor = node;
              anchor_entity = it->second;
            }
          } else {
            non_entity.push_back(node);
          }
        }
        if (anchor == nullptr && config_.discover_entities) {
          // Entity-discovery fallback: the page's main heading names the
          // page's subject. The heading text becomes a *candidate* entity.
          for (const html::Node* node : texts) {
            if (node->parent() != nullptr && node->parent()->is_element() &&
                node->parent()->tag() == "h1") {
              anchor = node;
              anchor_entity = std::string(Trim(node->text()));
              anchor_is_candidate = true;
              break;
            }
          }
          if (anchor != nullptr) {
            // The anchor is no longer a non-entity node.
            non_entity.erase(
                std::remove(non_entity.begin(), non_entity.end(), anchor),
                non_entity.end());
            if (pass == 0) {
              ++out.stats.pages_with_candidate_anchor;
              out.candidate_entities.push_back(anchor_entity);
            }
          }
        }
        if (pass == 0) {
          if (anchor != nullptr && !anchor_is_candidate) {
            ++out.stats.pages_with_entity;
          }
        }
        if (anchor == nullptr || non_entity.empty()) continue;

        // --- Tag paths from E to each non-entity node, grouped by path
        // signature (nodes sharing a path share one similarity test).
        struct PathGroup {
          html::TagPath path;
          std::vector<const html::Node*> nodes;
        };
        std::map<std::string, PathGroup> groups;
        for (const html::Node* node : non_entity) {
          html::TagPath path =
              html::PathBetween(anchor, node, config_.path_options);
          if (path.empty()) continue;
          auto [it, inserted] = groups.try_emplace(path.ToString());
          if (inserted) it->second.path = std::move(path);
          it->second.nodes.push_back(node);
        }

        // --- Induced pattern set: paths of nodes whose text is already in
        // A_T (the seed set, possibly grown by earlier pages/passes).
        // Seed recognition is EXACT-key: a fuzzy hit between a value string
        // and a seed would induce the value path as a pattern and flood the
        // attribute set with values.
        std::vector<const html::TagPath*> induced;
        std::vector<std::pair<const html::Node*, size_t>> labels;  // node,cluster
        for (auto& [signature, group] : groups) {
          bool has_seed = false;
          for (const html::Node* node : group.nodes) {
            std::string text(Trim(node->text()));
            size_t cluster = dedup.FindExact(text);
            if (cluster != SIZE_MAX) {
              has_seed = true;
              labels.emplace_back(node, cluster);
            }
          }
          if (has_seed) induced.push_back(&group.path);
        }
        if (induced.empty()) continue;
        if (pass == 0) ++out.stats.pages_used;
        out.stats.patterns_induced += induced.size();

        // --- Compare every other non-entity node's path with the induced
        // patterns; similar paths are new attributes.
        for (auto& [signature, group] : groups) {
          double best = 0.0;
          for (const html::TagPath* pattern : induced) {
            best = std::max(best,
                            html::TagPathSimilarity(group.path, *pattern));
            if (best >= 1.0) break;
          }
          if (best < config_.similarity_threshold) continue;
          for (const html::Node* node : group.nodes) {
            ++out.stats.nodes_considered;
            if (config_.attribute_budget &&
                dedup.num_clusters() >= config_.attribute_budget) {
              break;
            }
            std::string text(Trim(node->text()));
            if (dedup.Find(text) != SIZE_MAX) continue;  // already known
            if (!LabelTextAcceptable(text, config_.max_label_tokens)) {
              continue;
            }
            size_t cluster = dedup.Add(text);
            ++out.stats.nodes_matched;
            grew = true;
            DomAttribute& attr = discovered[cluster];
            if (attr.surface.empty()) {
              attr.surface = text;
              attr.canonical = dedup.key(cluster);
            }
            ++attr.support;
            attr.best_similarity = std::max(attr.best_similarity, best);
            labels.emplace_back(node, cluster);
            if (config_.attribute_budget &&
                dedup.num_clusters() >= config_.attribute_budget) {
              break;
            }
          }
        }

        // --- Harvest (entity, attribute, value) triples from label rows.
        double quality = anchor_is_candidate ? config_.candidate_quality
                                             : 1.0;
        for (const auto& [node, cluster] : labels) {
          std::string value = HarvestRowValue(node);
          if (value.empty()) continue;
          ExtractedTriple triple;
          triple.class_name = site.class_name;
          triple.entity = anchor_entity;
          triple.attribute = dedup.representative(cluster);
          triple.value = std::move(value);
          triple.source = site.domain;
          triple.extractor = rdf::ExtractorKind::kDomTree;
          triple.confidence = config_.confidence.Score(
              rdf::ExtractorKind::kDomTree, 1, quality);
          out.triples.push_back(std::move(triple));
          triple_quality.push_back(quality);
        }
        if (config_.attribute_budget &&
            dedup.num_clusters() >= config_.attribute_budget) {
          grew = false;
          break;
        }
      }
    }
  }

  // Report the attributes beyond the input seed clusters with refreshed
  // support counts (clusters discovered once keep accumulating support).
  for (auto& [cluster, attribute] : discovered) {
    if (cluster < input_clusters) continue;  // merged back into a seed
    DomAttribute final_attr = attribute;
    final_attr.support = std::max<size_t>(final_attr.support, 1);
    final_attr.confidence = config_.confidence.Score(
        rdf::ExtractorKind::kDomTree, final_attr.support,
        final_attr.best_similarity);
    out.new_attributes.push_back(std::move(final_attr));
  }
  std::sort(out.new_attributes.begin(), out.new_attributes.end(),
            [](const DomAttribute& a, const DomAttribute& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.canonical < b.canonical;
            });

  // Triples referring to the same (entity, attribute, value, source) on
  // several pages collapse into one observation whose confidence reflects
  // the repeated support.
  auto triple_key = [](const ExtractedTriple& t) {
    return t.entity + "\x01" + t.attribute + "\x01" + t.value + "\x01" +
           t.source;
  };
  std::map<std::string, size_t> support;
  std::map<std::string, double> quality_of;  // best anchor quality per key
  for (size_t i = 0; i < out.triples.size(); ++i) {
    std::string key = triple_key(out.triples[i]);
    ++support[key];
    auto [it, inserted] = quality_of.try_emplace(key, triple_quality[i]);
    if (!inserted) it->second = std::max(it->second, triple_quality[i]);
  }
  std::map<std::string, bool> seen;
  std::vector<ExtractedTriple> unique;
  for (ExtractedTriple& triple : out.triples) {
    std::string key = triple_key(triple);
    if (seen[key]) continue;
    seen[key] = true;
    triple.confidence = config_.confidence.Score(
        rdf::ExtractorKind::kDomTree, support[key], quality_of[key]);
    unique.push_back(std::move(triple));
  }
  out.triples = std::move(unique);

  AKB_COUNTER_ADD("akb.extract.dom.claims", int64_t(out.triples.size()));
  AKB_COUNTER_ADD("akb.extract.dom.new_attributes",
                  int64_t(out.new_attributes.size()));
  AKB_COUNTER_ADD("akb.extract.dom.patterns_induced",
                  int64_t(out.stats.patterns_induced));
  AKB_COUNTER_ADD("akb.extract.dom.nodes_classified",
                  int64_t(out.stats.nodes_considered));
  AKB_COUNTER_ADD("akb.extract.dom.pages_used",
                  int64_t(out.stats.pages_used));
  if (!out.class_name.empty()) {
    static obs::CounterFamily per_class_family("akb.extract.dom.claims.");
    per_class_family.Add(out.class_name, int64_t(out.triples.size()));
  }
  return out;
}

DomExtraction DomTreeExtractor::ExtractPages(
    const std::string& class_name, const std::vector<std::string>& page_html,
    const std::string& site_domain,
    const std::vector<std::string>& entity_names,
    const std::vector<std::string>& seed_attributes) const {
  synth::WebSite site;
  site.class_name = class_name;
  site.domain = site_domain;
  for (size_t i = 0; i < page_html.size(); ++i) {
    synth::WebPage page;
    page.url = "http://" + site_domain + "/page" + std::to_string(i) + ".html";
    page.html = page_html[i];
    site.pages.push_back(std::move(page));
  }
  return Extract({std::move(site)}, entity_names, seed_attributes);
}

DomExtraction DomTreeExtractor::ExtractSite(
    const synth::WebSite& site,
    const std::vector<std::string>& entity_names,
    const std::vector<std::string>& seed_attributes) const {
  return ExtractSites({&site}, entity_names, seed_attributes);
}

DomExtraction DomTreeExtractor::ExtractSharded(
    const std::vector<synth::WebSite>& sites,
    const std::vector<std::string>& entity_names,
    const std::vector<std::string>& seed_attributes,
    mapreduce::ThreadPool* pool) const {
  // Map phase: one task per site, each running Algorithm 1 with only the
  // input seeds (site-local growth). Tasks write disjoint slots, so any
  // worker count — including the inline pool == nullptr path — produces
  // the same per_site array.
  std::vector<DomExtraction> per_site(sites.size());
  mapreduce::ParallelFor(pool, sites.size(), [&](size_t s) {
    per_site[s] = ExtractSite(sites[s], entity_names, seed_attributes);
  });
  return MergeSiteExtractions(std::move(per_site), seed_attributes);
}

DomExtraction DomTreeExtractor::MergeSiteExtractions(
    std::vector<DomExtraction> per_site,
    const std::vector<std::string>& seed_attributes) const {
  DomExtraction out;
  for (const DomExtraction& shard : per_site) {
    if (!shard.class_name.empty()) {
      out.class_name = shard.class_name;
      break;
    }
  }

  // Merge in shard order throughout.
  //
  // Attributes: re-cluster every shard's discoveries through a fresh
  // deduper so near-duplicate surfaces found on different sites collapse;
  // support sums, best similarity maxes, and confidence is recomputed from
  // the merged evidence (matching how Extract scores a cluster it saw on
  // several sites).
  AttributeDeduper dedup(config_.dedup);
  for (const std::string& seed : seed_attributes) dedup.Add(seed);
  size_t input_clusters = dedup.num_clusters();
  std::map<size_t, DomAttribute> merged;
  for (const DomExtraction& shard : per_site) {
    for (const DomAttribute& attr : shard.new_attributes) {
      size_t cluster = dedup.Add(attr.surface);
      if (cluster < input_clusters) continue;  // collapsed into a seed
      DomAttribute& m = merged[cluster];
      if (m.surface.empty()) {
        m.surface = attr.surface;
        m.canonical = dedup.key(cluster);
      }
      m.support += attr.support;
      m.best_similarity = std::max(m.best_similarity, attr.best_similarity);
    }
  }
  for (auto& [cluster, attr] : merged) {
    attr.support = std::max<size_t>(attr.support, 1);
    attr.confidence = config_.confidence.Score(
        rdf::ExtractorKind::kDomTree, attr.support, attr.best_similarity);
    out.new_attributes.push_back(std::move(attr));
  }
  std::sort(out.new_attributes.begin(), out.new_attributes.end(),
            [](const DomAttribute& a, const DomAttribute& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.canonical < b.canonical;
            });

  // Triples concatenate in site order (each site's source domain is
  // distinct, so the per-shard (entity, attribute, value, source)
  // collapse already removed every duplicate). Attribute surfaces remap
  // to the merged representatives so fusion keys agree across sites.
  for (DomExtraction& shard : per_site) {
    for (ExtractedTriple& triple : shard.triples) {
      size_t cluster = dedup.Find(triple.attribute);
      if (cluster != SIZE_MAX) {
        triple.attribute = dedup.representative(cluster);
      }
      out.triples.push_back(std::move(triple));
    }
    for (std::string& candidate : shard.candidate_entities) {
      out.candidate_entities.push_back(std::move(candidate));
    }
    out.stats.pages_total += shard.stats.pages_total;
    out.stats.pages_with_entity += shard.stats.pages_with_entity;
    out.stats.pages_used += shard.stats.pages_used;
    out.stats.patterns_induced += shard.stats.patterns_induced;
    out.stats.nodes_considered += shard.stats.nodes_considered;
    out.stats.nodes_matched += shard.stats.nodes_matched;
    out.stats.passes += shard.stats.passes;
    out.stats.pages_with_candidate_anchor +=
        shard.stats.pages_with_candidate_anchor;
  }
  return out;
}

}  // namespace akb::extract

// Web-text knowledge extraction (paper §3.1).
//
// "For Web texts, we learn regular lexical and parse patterns (which are
// unified syntax rules over the Web) from sentences and adopt these
// patterns directly to conduct knowledge extraction."
//
// The extractor validates a family of candidate lexical patterns against
// sentences in which both a known entity and a seed attribute occur; a
// pattern is *learned* once it explains at least `min_pattern_support` such
// seed sentences. Learned patterns are then applied corpus-wide: the [A]
// slot yields new attributes, the [V] slot yields (entity, attribute,
// value) triples.
#ifndef AKB_EXTRACT_TEXT_EXTRACTOR_H_
#define AKB_EXTRACT_TEXT_EXTRACTOR_H_

#include <string>
#include <vector>

#include "extract/attribute_dedup.h"
#include "extract/confidence.h"
#include "extract/extraction.h"
#include "text/pattern.h"

namespace akb::extract {

struct TextExtractorConfig {
  /// Seed sentences a candidate pattern must explain to be learned.
  size_t min_pattern_support = 3;
  /// Distinct sentences needed before a non-seed attribute is reported.
  size_t min_attribute_support = 2;
  size_t max_attribute_tokens = 4;
  size_t max_slot_tokens = 5;
  AttributeDeduper::Options dedup;
  ConfidenceCriterion confidence;
};

struct LearnedPattern {
  std::string spec;
  size_t seed_support = 0;  ///< seed sentences it explained during learning
};

struct TextExtraction {
  std::string class_name;
  std::vector<LearnedPattern> patterns;
  /// Attributes not in the seed set, found by applying learned patterns.
  std::vector<ExtractedAttribute> new_attributes;
  std::vector<ExtractedTriple> triples;
  size_t sentences_total = 0;
  size_t sentences_matched = 0;
};

class WebTextExtractor {
 public:
  explicit WebTextExtractor(TextExtractorConfig config = {});

  /// Learns patterns from seed co-occurrences in `documents` (each one
  /// source text), then applies them. `source_names` parallels `documents`
  /// (provenance); pass an empty vector to autoname.
  TextExtraction Extract(const std::string& class_name,
                         const std::vector<std::string>& documents,
                         const std::vector<std::string>& source_names,
                         const std::vector<std::string>& entity_names,
                         const std::vector<std::string>& seed_attributes)
      const;

  /// The candidate pattern family (superset of what gets learned),
  /// exposed for tests.
  static std::vector<std::string> CandidateSpecs();

 private:
  TextExtractorConfig config_;
  std::vector<text::Pattern> candidates_;
  /// Original specs (with "[E]") for reporting; candidates_ are compiled
  /// with the entity placeholder substituted.
  std::vector<std::string> display_specs_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_TEXT_EXTRACTOR_H_

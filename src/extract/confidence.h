// The unified confidence criterion (paper §3.1).
//
// Each extractor produces evidence of a different kind (fact counts in a KB,
// query-record support, tag-path similarity, validated lexical patterns).
// The paper proposes assigning every triple a confidence score "based on an
// unified criterion" so downstream fusion can compare scores across
// extractors. We use one family:
//
//   confidence = prior(extractor) * quality * (1 - (1 - r)^support)
//
// where `quality` in [0,1] is the extractor-specific signal strength (e.g.
// tag-path similarity), `support` is the number of independent observations,
// and r is the per-observation credibility gain. The saturating support term
// makes repeated evidence count while bounding the score below 1.
#ifndef AKB_EXTRACT_CONFIDENCE_H_
#define AKB_EXTRACT_CONFIDENCE_H_

#include <cstddef>

#include "rdf/triple.h"

namespace akb::extract {

struct ConfidenceCriterion {
  /// Per-observation credibility gain.
  double observation_gain = 0.35;
  /// Extractor priors: how much each extraction channel is trusted a
  /// priori (existing KBs most; open-Web DOM/text least).
  double kb_prior = 0.95;
  double query_prior = 0.80;
  double dom_prior = 0.70;
  double text_prior = 0.65;

  /// The unified score in [0, 1).
  double Score(rdf::ExtractorKind kind, size_t support,
               double quality = 1.0) const;

  double PriorOf(rdf::ExtractorKind kind) const;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_CONFIDENCE_H_

// Temporal knowledge extraction (paper §2.1, "Temporal Knowledge
// Extractors identify the facts on given relations at different time
// points").
//
// Dated lexical patterns extract (entity, attribute, value, year)
// quadruples:
//   "in [T] the [A] of [E] was [V]"
//   "[V] became the [A] of [E] in [T]"
// The [T] slot must be a plausible year. Per (entity, attribute, year),
// conflicting observations are resolved by majority; per (entity,
// attribute), the year-by-year winners are merged into maximal validity
// *intervals* — the interval reconstruction the paper calls "more complex"
// than snapshot extraction.
#ifndef AKB_EXTRACT_TEMPORAL_EXTRACTOR_H_
#define AKB_EXTRACT_TEMPORAL_EXTRACTOR_H_

#include <string>
#include <vector>

#include "text/pattern.h"

namespace akb::extract {

struct TemporalExtractorConfig {
  int min_year = 1800;
  int max_year = 2100;
  size_t max_phrase_tokens = 4;
  /// Minimum observations for a (entity, attribute, year, value) cell.
  size_t min_support = 1;
};

/// One dated observation.
struct TemporalObservation {
  std::string entity;
  std::string attribute;
  std::string value;
  int year = 0;
  size_t support = 0;
};

/// A reconstructed validity interval.
struct TemporalInterval {
  std::string entity;
  std::string attribute;
  std::string value;
  int start_year = 0;
  int end_year = 0;
};

struct TemporalExtraction {
  /// Majority value per (entity, attribute, year).
  std::vector<TemporalObservation> observations;
  /// Maximal intervals merged from consecutive years with one value.
  std::vector<TemporalInterval> intervals;
  size_t sentences_total = 0;
  size_t pattern_hits = 0;

  /// The extracted holder for (entity, attribute) at `year`, or "".
  std::string ValueAt(const std::string& entity, const std::string& attribute,
                      int year) const;
};

class TemporalExtractor {
 public:
  explicit TemporalExtractor(TemporalExtractorConfig config = {});

  TemporalExtraction Extract(const std::vector<std::string>& documents) const;

  static std::vector<std::string> PatternSpecs();

 private:
  TemporalExtractorConfig config_;
  std::vector<text::Pattern> patterns_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_TEMPORAL_EXTRACTOR_H_

#include "extract/row_harvest.h"

#include "common/string_util.h"

namespace akb::extract {

void CollectTextNodes(const html::Node* root,
                      std::vector<const html::Node*>* out) {
  if (root->is_text()) {
    if (!Trim(root->text()).empty()) out->push_back(root);
    return;
  }
  for (const auto& child : root->children()) {
    CollectTextNodes(child.get(), out);
  }
}

std::string HarvestRowValue(const html::Node* label) {
  std::string label_text = NormalizeSurface(label->text());
  const html::Node* row = label->parent();
  while (row != nullptr && NormalizeSurface(row->InnerText()) == label_text) {
    row = row->parent();
  }
  if (row == nullptr) return "";
  std::vector<const html::Node*> texts;
  CollectTextNodes(row, &texts);
  for (size_t i = 0; i < texts.size(); ++i) {
    if (texts[i] == label) {
      if (i + 1 < texts.size()) {
        return std::string(Trim(texts[i + 1]->text()));
      }
      return "";
    }
  }
  return "";
}

}  // namespace akb::extract

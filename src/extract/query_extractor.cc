#include "extract/query_extractor.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "text/tokenize.h"

namespace akb::extract {

namespace {

/// Placeholder token substituted for a recognized entity mention before
/// pattern matching; never produced by the tokenizer.
const char kEntityToken[] = "\x01" "ent";

bool AllDigits(const std::vector<std::string>& tokens, size_t begin,
               size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (!IsDigits(tokens[i])) return false;
  }
  return true;
}

bool AllStopwords(const std::vector<std::string>& tokens, size_t begin,
                  size_t end) {
  static const char* const kStop[] = {"the", "a",  "an", "of", "in",
                                      "on",  "to", "is", "for"};
  for (size_t i = begin; i < end; ++i) {
    bool stop = false;
    for (const char* s : kStop) {
      if (tokens[i] == s) {
        stop = true;
        break;
      }
    }
    if (!stop) return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> QueryStreamExtractor::PatternSpecs() {
  return {
      "(what|how|when|who) is the [A] of ?(the|a|an) [E]",
      "the [A] of ?(the|a|an) [E]",
      "[E] 's [A]",
      "[A] of ?(the|a|an) [E]",
  };
}

QueryStreamExtractor::QueryStreamExtractor(QueryExtractorConfig config)
    : config_(std::move(config)) {
  // The [E] slot is compiled as a literal placeholder token: the entity
  // mention is collapsed to that token before matching, so the entity
  // position is matched exactly (a free [E] slot could swallow arbitrary
  // trailing tokens during backtracking).
  for (const std::string& spec : PatternSpecs()) {
    auto pattern =
        text::Pattern::Parse(ReplaceAll(spec, "[E]", kEntityToken));
    assert(pattern.ok());
    patterns_.push_back(std::move(pattern).value());
  }
}

void QueryStreamExtractor::AddClass(
    std::string class_name, const std::vector<std::string>& entity_names) {
  ClassEntry entry;
  entry.name = std::move(class_name);
  size_t entity_ordinal = 0;
  for (const std::string& name : entity_names) {
    std::vector<std::string> tokens = text::TokenizeWords(name);
    if (tokens.empty()) continue;
    auto add_variant = [&](std::vector<std::string> variant) {
      if (variant.empty()) return;
      size_t index = entry.entity_tokens.size();
      entry.by_first_token[variant.front()].push_back(index);
      entry.entity_tokens.push_back(std::move(variant));
      entry.entity_of_variant.push_back(entity_ordinal);
    };
    add_variant(tokens);
    // Article-stripped variant ("silent harbor" for "The Silent Harbor"):
    // queries often drop the article or re-add their own.
    if (tokens.size() > 1 && (tokens.front() == "the" ||
                              tokens.front() == "a" || tokens.front() == "an")) {
      add_variant({tokens.begin() + 1, tokens.end()});
    }
    ++entity_ordinal;
  }
  classes_.push_back(std::move(entry));
}

size_t QueryStreamExtractor::MatchEntity(const ClassEntry& cls,
                                         const std::vector<std::string>& tokens,
                                         size_t begin, size_t end) {
  if (begin >= end || end > tokens.size()) return SIZE_MAX;
  auto it = cls.by_first_token.find(tokens[begin]);
  if (it == cls.by_first_token.end()) return SIZE_MAX;
  for (size_t index : it->second) {
    const auto& entity = cls.entity_tokens[index];
    if (entity.size() != end - begin) continue;
    if (std::equal(entity.begin(), entity.end(), tokens.begin() + begin)) {
      return index;
    }
  }
  return SIZE_MAX;
}

bool QueryStreamExtractor::MentionsEntity(
    const ClassEntry& cls, const std::vector<std::string>& tokens) {
  for (size_t pos = 0; pos < tokens.size(); ++pos) {
    auto it = cls.by_first_token.find(tokens[pos]);
    if (it == cls.by_first_token.end()) continue;
    for (size_t index : it->second) {
      const auto& entity = cls.entity_tokens[index];
      if (pos + entity.size() > tokens.size()) continue;
      if (std::equal(entity.begin(), entity.end(), tokens.begin() + pos)) {
        return true;
      }
    }
  }
  return false;
}

bool QueryStreamExtractor::PassesFilters(
    const std::vector<std::string>& tokens, size_t begin, size_t end) const {
  size_t len = end - begin;
  if (len == 0 || len > config_.max_attribute_tokens) return false;
  if (AllDigits(tokens, begin, end)) return false;
  if (AllStopwords(tokens, begin, end)) return false;
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i] == kEntityToken) return false;
    if (tokens[i].size() < 2) return false;
    for (const std::string& junk : config_.junk_words) {
      if (tokens[i] == junk) return false;
    }
  }
  return true;
}

QueryClassExtraction QueryStreamExtractor::ScanClass(
    size_t class_index,
    const std::vector<std::vector<std::string>>& tokenized) const {
  const ClassEntry& cls = classes_[class_index];

  struct Candidate {
    size_t records = 0;
    std::unordered_set<size_t> entities;
    std::unordered_map<std::string, size_t> surfaces;
  };
  size_t relevant = 0, pattern_hits = 0, filtered_out = 0;
  AttributeDeduper dedup(config_.dedup);
  std::map<size_t, Candidate> candidates;  // cluster id -> evidence

  for (const std::vector<std::string>& tokens : tokenized) {
    if (tokens.empty()) continue;

    // Find the longest entity mention (longest-first avoids matching the
    // article-stripped variant inside the full name).
    size_t ent_begin = SIZE_MAX, ent_len = 0, ent_index = SIZE_MAX;
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      auto it = cls.by_first_token.find(tokens[pos]);
      if (it == cls.by_first_token.end()) continue;
      for (size_t index : it->second) {
        const auto& entity = cls.entity_tokens[index];
        if (pos + entity.size() > tokens.size()) continue;
        if (entity.size() > ent_len &&
            std::equal(entity.begin(), entity.end(),
                       tokens.begin() + pos)) {
          ent_begin = pos;
          ent_len = entity.size();
          ent_index = index;
        }
      }
    }
    if (ent_begin == SIZE_MAX) continue;
    ++relevant;

    // Collapse the mention into a single placeholder token and try the
    // pattern family anchored over the whole query.
    std::vector<std::string> collapsed;
    collapsed.reserve(tokens.size() - ent_len + 1);
    collapsed.insert(collapsed.end(), tokens.begin(),
                     tokens.begin() + ent_begin);
    collapsed.push_back(kEntityToken);
    collapsed.insert(collapsed.end(), tokens.begin() + ent_begin + ent_len,
                     tokens.end());

    for (const text::Pattern& pattern : patterns_) {
      text::PatternMatch match;
      if (!pattern.MatchWhole(collapsed, config_.max_attribute_tokens,
                              &match)) {
        continue;
      }
      auto a_slot = match.slots.find("A");
      if (a_slot == match.slots.end()) continue;
      ++pattern_hits;
      if (!PassesFilters(collapsed, a_slot->second.begin,
                         a_slot->second.end)) {
        ++filtered_out;
        break;
      }
      std::string surface = text::JoinTokens(collapsed,
                                             a_slot->second.begin,
                                             a_slot->second.end);
      size_t cluster = dedup.Add(surface);
      Candidate& cand = candidates[cluster];
      ++cand.records;
      cand.entities.insert(cls.entity_of_variant[ent_index]);
      ++cand.surfaces[surface];
      break;  // first matching pattern wins for this (query, class)
    }
  }

  QueryClassExtraction out;
  out.class_name = cls.name;
  out.relevant_records = relevant;
  out.pattern_hits = pattern_hits;
  out.filtered_out = filtered_out;
  for (const auto& [cluster, cand] : candidates) {
    if (cand.records < config_.min_record_support) continue;
    if (cand.entities.size() < config_.min_entity_support) continue;
    ExtractedAttribute attribute;
    attribute.class_name = out.class_name;
    attribute.surface = dedup.representative(cluster);
    attribute.canonical = dedup.key(cluster);
    attribute.support = cand.records;
    attribute.source = "query_stream";
    attribute.extractor = rdf::ExtractorKind::kQueryStream;
    attribute.confidence = config_.confidence.Score(
        rdf::ExtractorKind::kQueryStream, cand.records);
    out.credible_attributes.push_back(std::move(attribute));
  }
  // Deterministic presentation: by descending support, then name.
  std::sort(out.credible_attributes.begin(), out.credible_attributes.end(),
            [](const ExtractedAttribute& a, const ExtractedAttribute& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.canonical < b.canonical;
            });
  AKB_COUNTER_ADD("akb.extract.query.lines_matched",
                  int64_t(pattern_hits));
  AKB_COUNTER_ADD("akb.extract.query.relevant_records",
                  int64_t(relevant));
  AKB_COUNTER_ADD("akb.extract.query.credible_attributes",
                  int64_t(out.credible_attributes.size()));
  static obs::CounterFamily per_class_family(
      "akb.extract.query.credible_attributes.");
  per_class_family.Add(out.class_name, int64_t(out.credible_attributes.size()));
  return out;
}

QueryExtraction QueryStreamExtractor::Extract(
    const std::vector<std::string>& queries) const {
  return ExtractSharded(queries, nullptr);
}

QueryExtraction QueryStreamExtractor::ExtractSharded(
    const std::vector<std::string>& queries,
    mapreduce::ThreadPool* pool) const {
  QueryExtraction result;
  result.total_records = queries.size();

  // Tokenize each query once, shared read-only by every class scan.
  // Tokenization is a pure per-query function with disjoint writes, so the
  // chunking is scheduling only.
  std::vector<std::vector<std::string>> tokenized(queries.size());
  size_t chunks = pool ? pool->num_threads() * 4 : 1;
  mapreduce::ParallelForRanges(
      pool, queries.size(), chunks, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          tokenized[i] = text::TokenizeWords(queries[i]);
        }
      });

  // One task per class; class scans never share mutable state.
  result.classes.resize(classes_.size());
  mapreduce::ParallelFor(pool, classes_.size(), [&](size_t c) {
    result.classes[c] = ScanClass(c, tokenized);
  });
  return result;
}

const QueryClassExtraction* QueryExtraction::FindClass(
    std::string_view name) const {
  for (const auto& c : classes) {
    if (c.class_name == name) return &c;
  }
  return nullptr;
}

}  // namespace akb::extract

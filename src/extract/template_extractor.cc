#include "extract/template_extractor.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "extract/row_harvest.h"
#include "html/dom.h"
#include "text/tokenize.h"

namespace akb::extract {

namespace {

bool LabelTextOk(const std::string& text, size_t max_tokens) {
  auto tokens = text::TokenizeWords(text);
  if (tokens.empty() || tokens.size() > max_tokens) return false;
  for (const auto& token : tokens) {
    if (!IsDigits(token)) return true;
  }
  return false;  // all digits
}

}  // namespace

TemplateExtraction TemplateBaselineExtractor::Extract(
    const std::vector<synth::WebSite>& sites) const {
  TemplateExtraction out;
  if (!sites.empty()) out.class_name = sites.front().class_name;

  AttributeDeduper dedup(config_.dedup);
  std::map<size_t, ExtractedAttribute> attributes;  // cluster -> record

  for (const synth::WebSite& site : sites) {
    // --- Parse pages, remember each page's heading (entity proxy).
    std::vector<html::Document> docs;
    std::vector<std::string> headings;
    for (const auto& page : site.pages) {
      docs.push_back(html::ParseHtml(page.html));
      ++out.stats.pages;
      const html::Node* h1 = docs.back().FirstByTag("h1");
      headings.push_back(h1 != nullptr ? h1->InnerText() : "");
    }

    // --- Group text nodes by root tag path across the whole site.
    struct Occurrence {
      const html::Node* node;
      size_t page;
    };
    struct TextStats {
      size_t count = 0;
      std::set<size_t> pages;
    };
    struct Group {
      std::vector<Occurrence> occurrences;
      std::map<std::string, TextStats> distinct;
    };
    std::map<std::string, Group> groups;
    html::TagPathOptions path_options;
    for (size_t p = 0; p < docs.size(); ++p) {
      std::vector<const html::Node*> texts;
      CollectTextNodes(docs[p].root(), &texts);
      for (const html::Node* node : texts) {
        std::string signature =
            html::RootTagPath(node, path_options).ToString();
        Group& group = groups[signature];
        group.occurrences.push_back(Occurrence{node, p});
        TextStats& stats = group.distinct[std::string(Trim(node->text()))];
        ++stats.count;
        stats.pages.insert(p);
      }
    }
    out.stats.path_groups += groups.size();

    // --- Classify each group by its repetition profile.
    for (const auto& [signature, group] : groups) {
      size_t occurrences = group.occurrences.size();
      if (occurrences < config_.min_group_occurrences) continue;
      size_t distinct = group.distinct.size();

      // Boilerplate: every distinct text of the group is on ~all pages.
      double min_page_fraction = 1.0;
      for (const auto& [text, stats] : group.distinct) {
        min_page_fraction = std::min(
            min_page_fraction, static_cast<double>(stats.pages.size()) /
                                   static_cast<double>(docs.size()));
      }
      double repetition =
          static_cast<double>(occurrences) / static_cast<double>(distinct);

      if (distinct == 1 ||
          min_page_fraction >= config_.boilerplate_page_fraction) {
        ++out.stats.boilerplate_groups;
        continue;
      }
      if (repetition < config_.min_label_repetition) {
        ++out.stats.value_groups;
        continue;
      }
      ++out.stats.label_groups;

      // Label slot: every distinct text is an attribute candidate; every
      // occurrence yields a (heading-entity, label, row-value) triple.
      for (const Occurrence& occurrence : group.occurrences) {
        std::string text(Trim(occurrence.node->text()));
        if (!LabelTextOk(text, config_.max_label_tokens)) continue;
        size_t cluster = dedup.Add(text);
        auto [it, inserted] = attributes.try_emplace(cluster);
        ExtractedAttribute& attribute = it->second;
        if (inserted) {
          attribute.class_name = out.class_name;
          attribute.surface = text;
          attribute.canonical = dedup.key(cluster);
          attribute.source = site.domain;
          attribute.extractor = rdf::ExtractorKind::kDomTree;
        }
        ++attribute.support;
        attribute.confidence = config_.confidence.Score(
            rdf::ExtractorKind::kDomTree, attribute.support, 0.8);

        std::string value = HarvestRowValue(occurrence.node);
        const std::string& entity = headings[occurrence.page];
        if (!value.empty() && !entity.empty()) {
          ExtractedTriple triple;
          triple.class_name = out.class_name;
          triple.entity = entity;
          triple.attribute = dedup.representative(cluster);
          triple.value = std::move(value);
          triple.source = site.domain;
          triple.extractor = rdf::ExtractorKind::kDomTree;
          triple.confidence = config_.confidence.Score(
              rdf::ExtractorKind::kDomTree, 1, 0.8);
          out.triples.push_back(std::move(triple));
        }
      }
    }
  }

  for (auto& [cluster, attribute] : attributes) {
    out.attributes.push_back(std::move(attribute));
  }
  std::sort(out.attributes.begin(), out.attributes.end(),
            [](const ExtractedAttribute& a, const ExtractedAttribute& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.canonical < b.canonical;
            });
  return out;
}

}  // namespace akb::extract

// Attribute extraction from existing KBs (paper §4, Table 2).
//
// "We are the very first few to combine existing KBs for knowledge
// extraction (we use Freebase and DBpedia). The attributes are first
// analyzed separately for both KBs and then we combine the attribute
// extractions ... after some preprocessing (e.g., duplicate removal)."
//
// Per KB and class, the extractor mines the *instance layer* (every
// property surface actually used on entities of the class), normalizes and
// dedups surface variants into canonical attribute clusters, and keeps
// clusters meeting a minimal support. Combining unions the cluster sets of
// both KBs under a shared deduper, removing cross-KB duplicates.
#ifndef AKB_EXTRACT_KB_EXTRACTOR_H_
#define AKB_EXTRACT_KB_EXTRACTOR_H_

#include <string>
#include <vector>

#include "extract/attribute_dedup.h"
#include "extract/confidence.h"
#include "extract/extraction.h"
#include "synth/kb_gen.h"

namespace akb::extract {

struct KbExtractorConfig {
  /// Minimal number of instance facts supporting a mined attribute.
  size_t min_support = 1;
  AttributeDeduper::Options dedup;
  ConfidenceCriterion confidence;
};

/// Result for one class of one KB (or of the combination).
struct KbClassExtraction {
  std::string class_name;
  /// Attributes in the KB's declared schema (after dedup).
  size_t declared_attributes = 0;
  /// Canonical attributes mined from the instance layer.
  std::vector<ExtractedAttribute> attributes;
};

struct KbExtraction {
  std::string kb_name;
  std::vector<KbClassExtraction> classes;

  const KbClassExtraction* FindClass(std::string_view name) const;
};

class ExistingKbExtractor {
 public:
  explicit ExistingKbExtractor(KbExtractorConfig config = {})
      : config_(config) {}

  /// Mines one KB.
  KbExtraction Extract(const synth::KbSnapshot& kb) const;

  /// Mines and combines several KBs: per class, the union of all KBs'
  /// mined attributes under one deduper (duplicate removal across KBs).
  KbExtraction Combine(const std::vector<const synth::KbSnapshot*>& kbs) const;

  /// Instance-level (entity, attribute, value) triples of a KB, with
  /// confidence from the unified criterion; input to knowledge fusion.
  std::vector<ExtractedTriple> ExtractTriples(
      const synth::KbSnapshot& kb) const;

 private:
  KbClassExtraction ExtractClass(const synth::KbSnapshot& kb,
                                 const synth::KbClass& cls) const;

  KbExtractorConfig config_;
};

}  // namespace akb::extract

#endif  // AKB_EXTRACT_KB_EXTRACTOR_H_

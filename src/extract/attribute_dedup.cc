#include "extract/attribute_dedup.h"

#include <algorithm>
#include <cstdint>

#include "common/string_util.h"

namespace akb::extract {

namespace {

bool IsStopword(const std::string& token) {
  return token == "of" || token == "the" || token == "a" || token == "an" ||
         token == "for" || token == "in";
}

}  // namespace

std::string AttributeKey(std::string_view surface) {
  // Unfold identifier styles, drop stopwords, sort the remaining tokens so
  // "place of birth" and "birth place" collide.
  std::vector<std::string> tokens =
      SplitWhitespace(NormalizeIdentifier(surface));
  std::vector<std::string> kept;
  for (auto& token : tokens) {
    if (!IsStopword(token)) kept.push_back(std::move(token));
  }
  if (kept.empty()) kept = std::move(tokens);  // all-stopword surface
  std::sort(kept.begin(), kept.end());
  return Join(kept, " ");
}

size_t AttributeDeduper::FindByKey(const std::string& key) const {
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  // Fuzzy fallback: nearest existing key within the edit threshold.
  if (key.size() >= options_.min_fuzzy_length) {
    size_t best = SIZE_MAX;
    double best_sim = options_.fuzzy_threshold;
    for (size_t c = 0; c < clusters_.size(); ++c) {
      if (clusters_[c].key.size() < options_.min_fuzzy_length) continue;
      // Cheap length prefilter before the O(n*m) edit distance.
      size_t la = key.size(), lb = clusters_[c].key.size();
      size_t diff = la > lb ? la - lb : lb - la;
      if (static_cast<double>(diff) >
          (1.0 - options_.fuzzy_threshold) *
              static_cast<double>(std::max(la, lb))) {
        continue;
      }
      double sim = EditSimilarity(key, clusters_[c].key);
      if (sim >= best_sim) {
        best_sim = sim;
        best = c;
      }
    }
    if (best != SIZE_MAX) return best;
  }
  return SIZE_MAX;
}

size_t AttributeDeduper::Find(std::string_view surface) const {
  return FindByKey(AttributeKey(surface));
}

size_t AttributeDeduper::FindExact(std::string_view surface) const {
  auto it = by_key_.find(AttributeKey(surface));
  return it == by_key_.end() ? SIZE_MAX : it->second;
}

size_t AttributeDeduper::Add(std::string_view surface) {
  std::string key = AttributeKey(surface);
  size_t cluster = FindByKey(key);
  if (cluster == SIZE_MAX) {
    cluster = clusters_.size();
    clusters_.emplace_back();
    clusters_[cluster].key = key;
    by_key_.emplace(key, cluster);
  } else if (!by_key_.count(key)) {
    // A fuzzy merge: remember this spelling of the key, too.
    by_key_.emplace(key, cluster);
  }
  Cluster& c = clusters_[cluster];
  ++c.support;
  size_t count = ++c.surfaces[std::string(surface)];
  if (count > c.best_count) {
    c.best_count = count;
    c.best_surface = std::string(surface);
  }
  return cluster;
}

const std::string& AttributeDeduper::representative(size_t cluster) const {
  return clusters_[cluster].best_surface;
}

}  // namespace akb::extract

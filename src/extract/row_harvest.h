// Shared label-row value harvesting for DOM extractors.
#ifndef AKB_EXTRACT_ROW_HARVEST_H_
#define AKB_EXTRACT_ROW_HARVEST_H_

#include <string>
#include <vector>

#include "html/dom.h"

namespace akb::extract {

/// Collects non-empty text nodes under `root` in document order.
void CollectTextNodes(const html::Node* root,
                      std::vector<const html::Node*>* out);

/// The value paired with a label node: walk up to the first ancestor whose
/// text extends beyond the label (the "row"), then take the text node that
/// immediately follows the label inside that row. Works uniformly for
/// tr/th+td, dt+dd, li spans, and div rows. Returns "" when no paired value
/// exists.
std::string HarvestRowValue(const html::Node* label);

}  // namespace akb::extract

#endif  // AKB_EXTRACT_ROW_HARVEST_H_

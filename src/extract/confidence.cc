#include "extract/confidence.h"

#include <algorithm>
#include <cmath>

namespace akb::extract {

double ConfidenceCriterion::PriorOf(rdf::ExtractorKind kind) const {
  switch (kind) {
    case rdf::ExtractorKind::kExistingKb:
      return kb_prior;
    case rdf::ExtractorKind::kQueryStream:
      return query_prior;
    case rdf::ExtractorKind::kDomTree:
      return dom_prior;
    case rdf::ExtractorKind::kWebText:
      return text_prior;
    case rdf::ExtractorKind::kGroundTruth:
      return 1.0;
    default:
      return 0.5;
  }
}

double ConfidenceCriterion::Score(rdf::ExtractorKind kind, size_t support,
                                  double quality) const {
  quality = std::clamp(quality, 0.0, 1.0);
  double gain = std::clamp(observation_gain, 1e-6, 1.0 - 1e-6);
  double saturation =
      1.0 - std::pow(1.0 - gain, static_cast<double>(support));
  return PriorOf(kind) * quality * saturation;
}

}  // namespace akb::extract

#include "extract/text_extractor.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "text/tokenize.h"

namespace akb::extract {

namespace {

const char kEntityToken[] = "\x01" "ent";

struct EntityIndex {
  std::unordered_map<std::string, std::vector<size_t>> by_first_token;
  std::vector<std::vector<std::string>> variants;
  std::vector<std::string> names;  ///< original name per variant
};

EntityIndex BuildEntityIndex(const std::vector<std::string>& entity_names) {
  EntityIndex index;
  for (const std::string& name : entity_names) {
    std::vector<std::string> tokens = text::TokenizeWords(name);
    if (tokens.empty()) continue;
    auto add = [&](std::vector<std::string> variant) {
      if (variant.empty()) return;
      index.by_first_token[variant.front()].push_back(index.variants.size());
      index.variants.push_back(std::move(variant));
      index.names.push_back(name);
    };
    add(tokens);
    if (tokens.size() > 1 &&
        (tokens.front() == "the" || tokens.front() == "a" ||
         tokens.front() == "an")) {
      add({tokens.begin() + 1, tokens.end()});
    }
  }
  return index;
}

// Longest entity mention in `tokens`; fills begin/len/name. SIZE_MAX begin
// when absent.
void FindMention(const EntityIndex& index,
                 const std::vector<std::string>& tokens, size_t* begin,
                 size_t* len, std::string* name) {
  *begin = SIZE_MAX;
  *len = 0;
  for (size_t pos = 0; pos < tokens.size(); ++pos) {
    auto it = index.by_first_token.find(tokens[pos]);
    if (it == index.by_first_token.end()) continue;
    for (size_t v : it->second) {
      const auto& variant = index.variants[v];
      if (pos + variant.size() > tokens.size()) continue;
      if (variant.size() > *len &&
          std::equal(variant.begin(), variant.end(), tokens.begin() + pos)) {
        *begin = pos;
        *len = variant.size();
        *name = index.names[v];
      }
    }
  }
}

std::vector<std::string> Collapse(const std::vector<std::string>& tokens,
                                  size_t begin, size_t len) {
  std::vector<std::string> out;
  out.reserve(tokens.size() - len + 1);
  out.insert(out.end(), tokens.begin(), tokens.begin() + begin);
  out.push_back(kEntityToken);
  out.insert(out.end(), tokens.begin() + begin + len, tokens.end());
  return out;
}

bool SpanContainsEntity(const std::vector<std::string>& tokens,
                        const text::SlotSpan& span) {
  for (size_t i = span.begin; i < span.end; ++i) {
    if (tokens[i] == kEntityToken) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> WebTextExtractor::CandidateSpecs() {
  return {
      // The productive family (matches how facts are verbalized).
      "the [A] of [E] is [V]",
      "[E] 's [A] is [V]",
      "[V] is the [A] of [E]",
      "[E] has a [A] of [V]",
      // Decoys: plausible shapes that should fail pattern learning on a
      // corpus that does not verbalize facts this way.
      "[E] was [A] by [V]",
      "the [A] at [E] costs [V]",
      "[A] near [E]",
  };
}

WebTextExtractor::WebTextExtractor(TextExtractorConfig config)
    : config_(std::move(config)) {
  for (const std::string& spec : CandidateSpecs()) {
    auto pattern =
        text::Pattern::Parse(ReplaceAll(spec, "[E]", kEntityToken));
    assert(pattern.ok());
    candidates_.push_back(std::move(pattern).value());
    display_specs_.push_back(spec);
  }
}

TextExtraction WebTextExtractor::Extract(
    const std::string& class_name, const std::vector<std::string>& documents,
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& entity_names,
    const std::vector<std::string>& seed_attributes) const {
  TextExtraction out;
  out.class_name = class_name;

  EntityIndex index = BuildEntityIndex(entity_names);
  AttributeDeduper seed_dedup(config_.dedup);
  for (const std::string& seed : seed_attributes) seed_dedup.Add(seed);

  // Pre-tokenize sentences (shared by both phases).
  struct Sentence {
    std::vector<std::string> collapsed;
    std::string entity;
    size_t doc = 0;
  };
  std::vector<Sentence> sentences;
  for (size_t d = 0; d < documents.size(); ++d) {
    for (const std::string& raw : text::SplitSentences(documents[d])) {
      std::vector<std::string> tokens = text::TokenizeWords(raw);
      ++out.sentences_total;
      size_t begin, len;
      std::string entity;
      FindMention(index, tokens, &begin, &len, &entity);
      if (begin == SIZE_MAX) continue;
      Sentence s;
      s.collapsed = Collapse(tokens, begin, len);
      s.entity = std::move(entity);
      s.doc = d;
      sentences.push_back(std::move(s));
    }
  }

  // --- Phase 1: learn patterns from seed co-occurrences.
  std::vector<size_t> pattern_support(candidates_.size(), 0);
  for (const Sentence& s : sentences) {
    for (size_t p = 0; p < candidates_.size(); ++p) {
      for (const text::PatternMatch& match :
           candidates_[p].FindAll(s.collapsed, config_.max_slot_tokens)) {
        auto a = match.slots.find("A");
        if (a == match.slots.end()) continue;
        if (SpanContainsEntity(s.collapsed, a->second)) continue;
        std::string a_text =
            text::JoinTokens(s.collapsed, a->second.begin, a->second.end);
        if (seed_dedup.Find(a_text) != SIZE_MAX) {
          ++pattern_support[p];
          break;
        }
      }
    }
  }
  std::vector<size_t> learned;
  for (size_t p = 0; p < candidates_.size(); ++p) {
    if (pattern_support[p] >= config_.min_pattern_support) {
      learned.push_back(p);
      out.patterns.push_back(
          LearnedPattern{display_specs_[p], pattern_support[p]});
    }
  }

  // --- Phase 2: apply learned patterns corpus-wide.
  AttributeDeduper dedup = seed_dedup;  // grows with discoveries
  size_t input_clusters = dedup.num_clusters();
  struct Candidate {
    std::string surface;
    size_t support = 0;
    std::unordered_set<std::string> entities;
  };
  std::map<size_t, Candidate> candidates_found;

  for (const Sentence& s : sentences) {
    bool matched = false;
    for (size_t p : learned) {
      for (const text::PatternMatch& match :
           candidates_[p].FindAll(s.collapsed, config_.max_slot_tokens)) {
        auto a = match.slots.find("A");
        if (a == match.slots.end()) continue;
        if (SpanContainsEntity(s.collapsed, a->second)) continue;
        std::string a_text =
            text::JoinTokens(s.collapsed, a->second.begin, a->second.end);
        auto a_tokens_count = a->second.end - a->second.begin;
        if (a_tokens_count > config_.max_attribute_tokens) continue;
        matched = true;

        size_t cluster = dedup.Add(a_text);
        if (cluster >= input_clusters) {
          Candidate& cand = candidates_found[cluster];
          if (cand.surface.empty()) cand.surface = a_text;
          ++cand.support;
          cand.entities.insert(s.entity);
        }

        auto v = match.slots.find("V");
        if (v != match.slots.end() &&
            !SpanContainsEntity(s.collapsed, v->second)) {
          ExtractedTriple triple;
          triple.class_name = class_name;
          triple.entity = s.entity;
          triple.attribute = dedup.representative(cluster);
          triple.value =
              text::JoinTokens(s.collapsed, v->second.begin, v->second.end);
          triple.source = s.doc < source_names.size()
                              ? source_names[s.doc]
                              : "text_doc_" + std::to_string(s.doc);
          triple.extractor = rdf::ExtractorKind::kWebText;
          triple.confidence =
              config_.confidence.Score(rdf::ExtractorKind::kWebText, 1);
          out.triples.push_back(std::move(triple));
        }
      }
    }
    if (matched) ++out.sentences_matched;
  }

  for (const auto& [cluster, cand] : candidates_found) {
    if (cand.support < config_.min_attribute_support) continue;
    ExtractedAttribute attribute;
    attribute.class_name = class_name;
    attribute.surface = cand.surface;
    attribute.canonical = dedup.key(cluster);
    attribute.support = cand.support;
    attribute.source = "web_text";
    attribute.extractor = rdf::ExtractorKind::kWebText;
    attribute.confidence = config_.confidence.Score(
        rdf::ExtractorKind::kWebText, cand.support);
    out.new_attributes.push_back(std::move(attribute));
  }
  std::sort(out.new_attributes.begin(), out.new_attributes.end(),
            [](const ExtractedAttribute& a, const ExtractedAttribute& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.canonical < b.canonical;
            });

  AKB_COUNTER_ADD("akb.extract.text.claims", int64_t(out.triples.size()));
  AKB_COUNTER_ADD("akb.extract.text.new_attributes",
                  int64_t(out.new_attributes.size()));
  AKB_COUNTER_ADD("akb.extract.text.sentences_matched",
                  int64_t(out.sentences_matched));
  static obs::CounterFamily per_class_family("akb.extract.text.claims.");
  per_class_family.Add(class_name, int64_t(out.triples.size()));
  return out;
}

}  // namespace akb::extract

// Fixed-size thread pool used by the MapReduce engine and the sharded
// pipeline stages.
#ifndef AKB_MAPREDUCE_THREAD_POOL_H_
#define AKB_MAPREDUCE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace akb::mapreduce {

/// Simple FIFO thread pool. Submit work with Submit(); Wait() blocks until
/// every submitted task has finished (and may be called repeatedly).
///
/// Exception safety: a task that throws does not kill its worker thread.
/// The first exception is captured and rethrown by the next Wait() call
/// (later exceptions from the same batch are dropped); after the rethrow
/// the pool is reusable. The destructor drains the queue and swallows any
/// pending exception.
///
/// Shared use: a pool may serve several independent callers at once.
/// Submit()/Wait() form one shared completion domain (Wait blocks until
/// *everything* is done and sees any caller's error); callers that need
/// their own barrier and error isolation submit through a TaskGroup
/// instead — ParallelFor/ParallelForRanges and the MapReduce engine do.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. Rethrows the
  /// first exception thrown by a task since the last Wait(), if any.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Local telemetry (this pool only). Process-wide aggregates live in the
  /// obs metrics registry under "akb.mapreduce.pool.*"; those gauges are
  /// maintained with balanced deltas, so they stay correct when several
  /// pools are alive at once (each reads as the sum over live pools).
  size_t tasks_executed() const;
  size_t tasks_submitted() const;
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  size_t active_ = 0;
  size_t tasks_submitted_ = 0;
  size_t tasks_executed_ = 0;
  bool shutdown_ = false;
};

/// Returns the process-wide shared pool with exactly `num_threads` workers,
/// creating it on first use. Pools live for the rest of the process (one
/// per distinct worker count, so a worker-count sweep still measures the
/// parallelism it asks for), which removes the thread create/join cost
/// that per-job pools paid on every MapReduce job and fusion round.
///
/// Ownership rules: the returned pool is owned by the registry — never
/// delete it, and never call its Wait() (that would block on unrelated
/// callers' tasks and steal their errors); use a TaskGroup or
/// ParallelFor/ParallelForRanges, which wait per caller. Never submit to
/// a pool and wait on it from inside a task running on that same pool —
/// with every worker blocked in a nested wait the queue starves and the
/// pool deadlocks (flatten nested fan-outs instead).
ThreadPool* SharedPool(size_t num_threads);

/// One caller's batch of tasks on a (possibly shared) pool: Wait() blocks
/// only on tasks submitted through *this* group and rethrows the first
/// exception *this* group's tasks threw, so independent callers can share
/// one pool without cross-waiting or cross-contaminating errors.
///
/// With pool == nullptr, Run() executes the task inline on the caller (the
/// serial reference path) and exceptions propagate immediately.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  /// Waits for any outstanding tasks (errors are dropped — call Wait()).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> task);

  /// Blocks until every task Run() through this group has finished.
  /// Rethrows the first exception captured since the last Wait(); the
  /// group is reusable afterwards.
  void Wait();

 private:
  struct State {
    std::mutex mutex;
    std::condition_variable done;
    size_t pending = 0;
    std::exception_ptr first_error;
  };

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

/// Runs fn(i) for every i in [0, n) on `pool` and blocks until all calls
/// finished. With pool == nullptr the loop runs inline on the caller — the
/// serial reference path. Indexes are executed in contiguous runs of
/// `grain` per task (grain == 0 picks one that submits a small multiple of
/// the worker count for fine loops and one task per index for coarse
/// ones). Grain and task-to-index mapping are scheduling choices only, so
/// any computation whose calls write disjoint state produces bit-identical
/// results at every worker count and grain. Waits per caller (TaskGroup),
/// so concurrent ParallelFor calls may share one pool; rethrows the first
/// exception thrown by this loop's own tasks.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn, size_t grain = 0);

/// Chunked variant for fine-grained loops: [0, n) is split into
/// `num_chunks` contiguous ranges and fn(begin, end) runs once per
/// non-empty range. Chunk boundaries are only a scheduling choice — they
/// must not affect fn's observable result (disjoint writes, or per-chunk
/// accumulators merged with an associative, commutative operation).
void ParallelForRanges(ThreadPool* pool, size_t n, size_t num_chunks,
                       const std::function<void(size_t, size_t)>& fn);

}  // namespace akb::mapreduce

#endif  // AKB_MAPREDUCE_THREAD_POOL_H_

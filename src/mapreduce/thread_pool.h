// Fixed-size thread pool used by the MapReduce engine and the sharded
// pipeline stages.
#ifndef AKB_MAPREDUCE_THREAD_POOL_H_
#define AKB_MAPREDUCE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace akb::mapreduce {

/// Simple FIFO thread pool. Submit work with Submit(); Wait() blocks until
/// every submitted task has finished (and may be called repeatedly).
///
/// Exception safety: a task that throws does not kill its worker thread.
/// The first exception is captured and rethrown by the next Wait() call
/// (later exceptions from the same batch are dropped); after the rethrow
/// the pool is reusable. The destructor drains the queue and swallows any
/// pending exception.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. Rethrows the
  /// first exception thrown by a task since the last Wait(), if any.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Local telemetry (this pool only). Process-wide aggregates live in the
  /// obs metrics registry under "akb.mapreduce.pool.*".
  size_t tasks_executed() const;
  size_t tasks_submitted() const;
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  size_t active_ = 0;
  size_t tasks_submitted_ = 0;
  size_t tasks_executed_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for every i in [0, n) on `pool` and blocks until all calls
/// finished. With pool == nullptr the loop runs inline on the caller — the
/// serial reference path. Task-to-index mapping is fixed, so any
/// computation whose tasks write disjoint state produces bit-identical
/// results at every worker count. Rethrows the first task exception.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Chunked variant for fine-grained loops: [0, n) is split into
/// `num_chunks` contiguous ranges and fn(begin, end) runs once per
/// non-empty range. Chunk boundaries are only a scheduling choice — they
/// must not affect fn's observable result (disjoint writes, or per-chunk
/// accumulators merged with an associative, commutative operation).
void ParallelForRanges(ThreadPool* pool, size_t n, size_t num_chunks,
                       const std::function<void(size_t, size_t)>& fn);

}  // namespace akb::mapreduce

#endif  // AKB_MAPREDUCE_THREAD_POOL_H_

// Fixed-size thread pool used by the MapReduce engine.
#ifndef AKB_MAPREDUCE_THREAD_POOL_H_
#define AKB_MAPREDUCE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace akb::mapreduce {

/// Simple FIFO thread pool. Submit work with Submit(); Wait() blocks until
/// every submitted task has finished (and may be called repeatedly).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Local telemetry (this pool only). Process-wide aggregates live in the
  /// obs metrics registry under "akb.mapreduce.pool.*".
  size_t tasks_executed() const;
  size_t tasks_submitted() const;
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  size_t tasks_submitted_ = 0;
  size_t tasks_executed_ = 0;
  bool shutdown_ = false;
};

}  // namespace akb::mapreduce

#endif  // AKB_MAPREDUCE_THREAD_POOL_H_

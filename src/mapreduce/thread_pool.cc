#include "mapreduce/thread_pool.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/metrics.h"

namespace akb::mapreduce {

// Pool telemetry is global across pool instances: queue_depth/workers_busy
// show the current and high-water saturation summed over every live pool,
// tasks_executed the cumulative volume. All gauge writes are balanced
// deltas (+1/-1 around the same event), never absolute Set()s — an
// absolute write from one pool would clobber the contribution of any
// other pool alive at the same time.

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  AKB_GAUGE_ADD("akb.mapreduce.pool.workers_total",
                int64_t(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
  AKB_GAUGE_ADD("akb.mapreduce.pool.workers_total",
                -int64_t(workers_.size()));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
  }
  AKB_GAUGE_ADD("akb.mapreduce.pool.queue_depth", 1);
  AKB_COUNTER_INC("akb.mapreduce.pool.tasks_submitted");
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

size_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_executed_;
}

size_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_submitted_;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    AKB_GAUGE_ADD("akb.mapreduce.pool.queue_depth", -1);
    AKB_GAUGE_ADD("akb.mapreduce.pool.workers_busy", 1);
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
      AKB_COUNTER_INC("akb.mapreduce.pool.tasks_failed");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      ++tasks_executed_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
    AKB_GAUGE_ADD("akb.mapreduce.pool.workers_busy", -1);
    AKB_COUNTER_INC("akb.mapreduce.pool.tasks_executed");
  }
}

ThreadPool* SharedPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  static std::mutex registry_mutex;
  // Touch the metrics registry (leaked, never destroyed) before the pool
  // registry exists, so the pools' exit-time destructors can still write
  // their gauges.
  AKB_GAUGE_ADD("akb.mapreduce.pool.shared_pools", 0);
  static std::map<size_t, std::unique_ptr<ThreadPool>> registry;
  std::lock_guard<std::mutex> lock(registry_mutex);
  auto it = registry.find(num_threads);
  if (it == registry.end()) {
    it = registry
             .emplace(num_threads,
                      std::make_unique<ThreadPool>(num_threads))
             .first;
    AKB_GAUGE_ADD("akb.mapreduce.pool.shared_pools", 1);
  }
  return it->second.get();
}

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done.wait(lock, [this] { return state_->pending == 0; });
}

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->pending;
  }
  // The task holds its own reference to the state so a group abandoned
  // after a Wait() rethrow stays valid until its stragglers finish.
  pool_->Submit([state = state_, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
      AKB_COUNTER_INC("akb.mapreduce.pool.tasks_failed");
    }
    std::lock_guard<std::mutex> lock(state->mutex);
    if (error && !state->first_error) state->first_error = error;
    if (--state->pending == 0) state->done.notify_all();
  });
}

void TaskGroup::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done.wait(lock, [this] { return state_->pending == 0; });
    error = state_->first_error;
    state_->first_error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn, size_t grain) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    // Coarse loops (n within a small multiple of the worker count) keep
    // one task per index for FIFO load balancing of heterogeneous tasks;
    // fine loops submit ~8 chunk tasks per worker instead of one queued
    // std::function per index.
    grain = std::max<size_t>(1, n / (pool->num_threads() * 8));
  }
  TaskGroup group(pool);
  for (size_t begin = 0; begin < n; begin += grain) {
    size_t end = std::min(n, begin + grain);
    group.Run([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  group.Wait();
}

void ParallelForRanges(ThreadPool* pool, size_t n, size_t num_chunks,
                       const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  num_chunks = std::clamp<size_t>(num_chunks, 1, n);
  size_t per_chunk = (n + num_chunks - 1) / num_chunks;
  ParallelFor(
      pool, num_chunks,
      [&](size_t c) {
        size_t begin = c * per_chunk;
        size_t end = std::min(n, begin + per_chunk);
        if (begin < end) fn(begin, end);
      },
      /*grain=*/1);
}

}  // namespace akb::mapreduce

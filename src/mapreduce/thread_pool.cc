#include "mapreduce/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace akb::mapreduce {

// Pool telemetry is global across pool instances (pools are short-lived
// inside MapReduce jobs): queue_depth/workers_busy show the current and
// high-water saturation, tasks_executed the cumulative volume.

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  AKB_GAUGE_ADD("akb.mapreduce.pool.workers_total",
                int64_t(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
  AKB_GAUGE_ADD("akb.mapreduce.pool.workers_total",
                -int64_t(workers_.size()));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
    AKB_GAUGE_SET("akb.mapreduce.pool.queue_depth",
                  int64_t(queue_.size()));
  }
  AKB_COUNTER_INC("akb.mapreduce.pool.tasks_submitted");
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

size_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_executed_;
}

size_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_submitted_;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      AKB_GAUGE_SET("akb.mapreduce.pool.queue_depth",
                    int64_t(queue_.size()));
      AKB_GAUGE_ADD("akb.mapreduce.pool.workers_busy", 1);
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
      AKB_COUNTER_INC("akb.mapreduce.pool.tasks_failed");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      ++tasks_executed_;
      AKB_GAUGE_ADD("akb.mapreduce.pool.workers_busy", -1);
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
    AKB_COUNTER_INC("akb.mapreduce.pool.tasks_executed");
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

void ParallelForRanges(ThreadPool* pool, size_t n, size_t num_chunks,
                       const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  num_chunks = std::clamp<size_t>(num_chunks, 1, n);
  size_t per_chunk = (n + num_chunks - 1) / num_chunks;
  ParallelFor(pool, num_chunks, [&](size_t c) {
    size_t begin = c * per_chunk;
    size_t end = std::min(n, begin + per_chunk);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace akb::mapreduce

// In-process MapReduce engine.
//
// The paper scales knowledge fusion by expressing it as MapReduce jobs
// (after Dong et al., VLDB'14) and proposes a "distributed inference
// architecture, inherent in the MapReduce architectures, that avoids the
// synchronicity bottleneck" (§3.1). We reproduce the dataflow — map,
// hash-partitioned shuffle, grouped reduce — as a multi-threaded in-process
// engine so the same fusion jobs run unchanged on one machine.
//
// Execution: jobs run on one long-lived shared pool (JobOptions::pool, or
// the process-wide SharedPool(num_workers) when unset) instead of paying a
// thread create/join per phase, and the shuffle is flat and sort-based:
// map chunks emit contiguous (key, value) arrays, a counting scatter
// merges them into one flat buffer laid out partition-major, and each
// partition segment is sorted by (key, input-order rank) and reduced over
// equal-key runs. No per-key containers are allocated anywhere on the
// path; one value buffer per partition task is reused across keys.
//
// Determinism: regardless of thread count, reduce groups are formed per
// partition in sorted key order, and the rank carried through the shuffle
// is the claim's global map-emission index — chunks cover contiguous input
// ranges in order, so rank order *is* serial emission order for any
// chunking. Per-key values therefore keep the input order of the records
// that produced them, and the concatenated (partition, sorted key) output
// order is bit-identical at every worker count. The default partition
// count depends only on the input size (never on num_workers).
#ifndef AKB_MAPREDUCE_ENGINE_H_
#define AKB_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "mapreduce/thread_pool.h"
#include "obs/metrics.h"

namespace akb::mapreduce {

struct JobOptions {
  /// Worker threads for both map and reduce phases. This also sets the
  /// scheduling chunk count, so it bounds the job's parallelism even on a
  /// wider pool.
  size_t num_workers = 1;
  /// Shuffle partitions; 0 = min(64, input size), which is independent of
  /// the worker count so job output order is worker-count-invariant.
  size_t num_partitions = 0;
  /// Pool to run on when num_workers > 1. nullptr lazily shares the
  /// process-wide SharedPool(num_workers); pass a pool to reuse the warm
  /// workers a surrounding round loop already holds.
  ThreadPool* pool = nullptr;
};

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void Emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Runs one MapReduce job.
///
/// `map_fn(input, emitter)` is called once per input record;
/// `reduce_fn(key, values)` once per distinct key, receiving the values in
/// deterministic (map-emission) order; `hash_fn(key)` routes keys to
/// partitions. K needs strict-weak-ordering via operator< (the shuffle
/// sorts by it); K and V must be movable and default-constructible. The
/// result concatenates reduce outputs by (partition, sorted key).
///
/// A map_fn/reduce_fn exception is rethrown here (first one wins) and
/// leaves the pool reusable for later jobs.
template <typename Input, typename K, typename V, typename Output>
std::vector<Output> RunJob(
    const std::vector<Input>& inputs,
    const std::function<void(const Input&, Emitter<K, V>*)>& map_fn,
    const std::function<Output(const K&, const std::vector<V>&)>& reduce_fn,
    const std::function<size_t(const K&)>& hash_fn,
    const JobOptions& options = {}) {
  size_t workers = std::max<size_t>(1, options.num_workers);
  size_t partitions =
      options.num_partitions
          ? options.num_partitions
          : std::max<size_t>(1, std::min<size_t>(64, inputs.size()));
  AKB_COUNTER_INC("akb.mapreduce.jobs");
  AKB_COUNTER_ADD("akb.mapreduce.job_records", int64_t(inputs.size()));
  if (inputs.empty()) return {};

  ThreadPool* pool = nullptr;
  if (workers > 1 && inputs.size() > 1) {
    pool = options.pool ? options.pool : SharedPool(workers);
  }

  // --- Map phase: each worker maps a contiguous chunk of inputs into one
  // flat pair array plus that array's partition routing. The chunk count
  // is a scheduling choice only: ranks assigned below reconstruct the
  // serial emission order for any chunking.
  size_t chunks = std::min(inputs.size(), workers * 4);
  if (chunks == 0) chunks = 1;
  struct MappedChunk {
    std::vector<std::pair<K, V>> pairs;  // in emission order
    std::vector<uint32_t> partition;     // routing, parallel to pairs
    std::vector<size_t> part_counts;     // histogram over partitions
  };
  std::vector<MappedChunk> mapped(chunks);
  size_t per_chunk = (inputs.size() + chunks - 1) / chunks;
  ParallelFor(
      pool, chunks,
      [&](size_t c) {
        size_t begin = c * per_chunk;
        size_t end = std::min(inputs.size(), begin + per_chunk);
        Emitter<K, V> emitter;
        for (size_t i = begin; i < end; ++i) {
          map_fn(inputs[i], &emitter);
        }
        MappedChunk& m = mapped[c];
        m.pairs = std::move(emitter.pairs());
        m.partition.resize(m.pairs.size());
        m.part_counts.assign(partitions, 0);
        for (size_t j = 0; j < m.pairs.size(); ++j) {
          uint32_t p = uint32_t(hash_fn(m.pairs[j].first) % partitions);
          m.partition[j] = p;
          ++m.part_counts[p];
        }
      },
      /*grain=*/1);

  // --- Shuffle: counting scatter into one flat buffer, laid out
  // partition-major; within a partition, slices follow (chunk, emission)
  // order, i.e. ascending rank.
  struct Entry {
    uint64_t rank;  // global map-emission index (serial order)
    K key;
    V value;
  };
  // offsets[p * chunks + c] = where chunk c's slice of partition p starts.
  std::vector<size_t> offsets(partitions * chunks);
  std::vector<size_t> part_begin(partitions + 1);
  size_t total = 0;
  for (size_t p = 0; p < partitions; ++p) {
    part_begin[p] = total;
    for (size_t c = 0; c < chunks; ++c) {
      offsets[p * chunks + c] = total;
      total += mapped[c].part_counts[p];
    }
  }
  part_begin[partitions] = total;
  std::vector<uint64_t> rank_base(chunks);
  uint64_t rank = 0;
  for (size_t c = 0; c < chunks; ++c) {
    rank_base[c] = rank;
    rank += mapped[c].pairs.size();
  }

  std::vector<Entry> entries(total);
  ParallelFor(
      pool, chunks,
      [&](size_t c) {
        MappedChunk& m = mapped[c];
        std::vector<size_t> cursor(partitions);
        for (size_t p = 0; p < partitions; ++p) {
          cursor[p] = offsets[p * chunks + c];
        }
        for (size_t j = 0; j < m.pairs.size(); ++j) {
          Entry& e = entries[cursor[m.partition[j]]++];
          e.rank = rank_base[c] + j;
          e.key = std::move(m.pairs[j].first);
          e.value = std::move(m.pairs[j].second);
        }
        // Release chunk memory early: the flat buffer owns the data now.
        std::vector<std::pair<K, V>>().swap(m.pairs);
        std::vector<uint32_t>().swap(m.partition);
      },
      /*grain=*/1);

  // --- Sort + reduce: each partition segment is an independent task.
  // Sorting by (key, rank) makes equal-key runs contiguous with values in
  // emission order; one reusable buffer feeds reduce_fn per run.
  std::vector<std::vector<Output>> partition_outputs(partitions);
  ParallelFor(
      pool, partitions,
      [&](size_t p) {
        auto begin = entries.begin() + ptrdiff_t(part_begin[p]);
        auto end = entries.begin() + ptrdiff_t(part_begin[p + 1]);
        if (begin == end) return;
        std::sort(begin, end, [](const Entry& a, const Entry& b) {
          if (a.key < b.key) return true;
          if (b.key < a.key) return false;
          return a.rank < b.rank;
        });
        std::vector<V> values;  // reused across keys
        for (auto run = begin; run != end;) {
          auto run_end = run;
          // keys ascend, so equality is !(run->key < run_end->key).
          while (run_end != end && !(run->key < run_end->key)) ++run_end;
          values.clear();
          for (auto it = run; it != run_end; ++it) {
            values.push_back(std::move(it->value));
          }
          partition_outputs[p].push_back(reduce_fn(run->key, values));
          run = run_end;
        }
      },
      /*grain=*/1);

  std::vector<Output> out;
  size_t out_total = 0;
  for (const auto& po : partition_outputs) out_total += po.size();
  out.reserve(out_total);
  for (auto& po : partition_outputs) {
    for (auto& o : po) out.push_back(std::move(o));
  }
  return out;
}

/// Convenience overload using std::hash<K>.
template <typename Input, typename K, typename V, typename Output>
std::vector<Output> RunJob(
    const std::vector<Input>& inputs,
    const std::function<void(const Input&, Emitter<K, V>*)>& map_fn,
    const std::function<Output(const K&, const std::vector<V>&)>& reduce_fn,
    const JobOptions& options = {}) {
  return RunJob<Input, K, V, Output>(
      inputs, map_fn, reduce_fn,
      [](const K& k) { return std::hash<K>{}(k); }, options);
}

}  // namespace akb::mapreduce

#endif  // AKB_MAPREDUCE_ENGINE_H_

// In-process MapReduce engine.
//
// The paper scales knowledge fusion by expressing it as MapReduce jobs
// (after Dong et al., VLDB'14) and proposes a "distributed inference
// architecture, inherent in the MapReduce architectures, that avoids the
// synchronicity bottleneck" (§3.1). We reproduce the dataflow — map,
// hash-partitioned shuffle, grouped reduce — as a multi-threaded in-process
// engine so the same fusion jobs run unchanged on one machine.
//
// Determinism: regardless of thread count, reduce groups are formed per
// partition in sorted key order and per-key values keep the input order of
// the records that produced them, so job output is reproducible. The
// default partition count depends only on the input size (never on
// num_workers), so the concatenated (partition, sorted key) output order
// is bit-identical at every worker count.
#ifndef AKB_MAPREDUCE_ENGINE_H_
#define AKB_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "mapreduce/thread_pool.h"
#include "obs/metrics.h"

namespace akb::mapreduce {

struct JobOptions {
  /// Worker threads for both map and reduce phases.
  size_t num_workers = 1;
  /// Shuffle partitions; 0 = min(64, input size), which is independent of
  /// the worker count so job output order is worker-count-invariant.
  size_t num_partitions = 0;
};

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void Emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Runs one MapReduce job.
///
/// `map_fn(input, emitter)` is called once per input record;
/// `reduce_fn(key, values)` once per distinct key, receiving the values in
/// deterministic order; `hash_fn(key)` routes keys to partitions.
/// The result concatenates reduce outputs by (partition, sorted key).
template <typename Input, typename K, typename V, typename Output>
std::vector<Output> RunJob(
    const std::vector<Input>& inputs,
    const std::function<void(const Input&, Emitter<K, V>*)>& map_fn,
    const std::function<Output(const K&, const std::vector<V>&)>& reduce_fn,
    const std::function<size_t(const K&)>& hash_fn,
    const JobOptions& options = {}) {
  size_t workers = std::max<size_t>(1, options.num_workers);
  size_t partitions =
      options.num_partitions
          ? options.num_partitions
          : std::max<size_t>(1, std::min<size_t>(64, inputs.size()));
  AKB_COUNTER_INC("akb.mapreduce.jobs");
  AKB_COUNTER_ADD("akb.mapreduce.job_records", int64_t(inputs.size()));

  // --- Map phase: each worker maps a contiguous chunk of inputs. The
  // chunk count is a scheduling choice only: per-partition pair lists are
  // merged in chunk order below, which reconstructs input order for any
  // chunking.
  size_t chunks = std::min(inputs.size(), workers * 4);
  if (chunks == 0) chunks = 1;
  // chunk -> partition -> (key, value) pairs, kept separate so the shuffle
  // can merge them in chunk order (determinism).
  std::vector<std::vector<std::vector<std::pair<K, V>>>> mapped(
      chunks, std::vector<std::vector<std::pair<K, V>>>(partitions));

  {
    ThreadPool pool(workers);
    size_t per_chunk = (inputs.size() + chunks - 1) / chunks;
    for (size_t c = 0; c < chunks; ++c) {
      pool.Submit([&, c] {
        size_t begin = c * per_chunk;
        size_t end = std::min(inputs.size(), begin + per_chunk);
        Emitter<K, V> emitter;
        for (size_t i = begin; i < end; ++i) {
          map_fn(inputs[i], &emitter);
        }
        for (auto& [key, value] : emitter.pairs()) {
          size_t p = hash_fn(key) % partitions;
          mapped[c][p].emplace_back(std::move(key), std::move(value));
        }
      });
    }
    pool.Wait();
  }

  // --- Shuffle + reduce phase: group per partition, reduce in parallel.
  std::vector<std::vector<Output>> partition_outputs(partitions);
  {
    ThreadPool pool(workers);
    for (size_t p = 0; p < partitions; ++p) {
      pool.Submit([&, p] {
        std::map<K, std::vector<V>> groups;  // sorted keys => determinism
        for (size_t c = 0; c < chunks; ++c) {
          for (auto& [key, value] : mapped[c][p]) {
            groups[key].push_back(std::move(value));
          }
        }
        for (auto& [key, values] : groups) {
          partition_outputs[p].push_back(reduce_fn(key, values));
        }
      });
    }
    pool.Wait();
  }

  std::vector<Output> out;
  for (auto& po : partition_outputs) {
    for (auto& o : po) out.push_back(std::move(o));
  }
  return out;
}

/// Convenience overload using std::hash<K>.
template <typename Input, typename K, typename V, typename Output>
std::vector<Output> RunJob(
    const std::vector<Input>& inputs,
    const std::function<void(const Input&, Emitter<K, V>*)>& map_fn,
    const std::function<Output(const K&, const std::vector<V>&)>& reduce_fn,
    const JobOptions& options = {}) {
  return RunJob<Input, K, V, Output>(
      inputs, map_fn, reduce_fn,
      [](const K& k) { return std::hash<K>{}(k); }, options);
}

}  // namespace akb::mapreduce

#endif  // AKB_MAPREDUCE_ENGINE_H_

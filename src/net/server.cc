#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "serve/bgp.h"

namespace akb::net {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

}  // namespace

struct Server::Connection {
  int fd = -1;
  /// Read accumulator; frames are extracted from the front.
  std::string inbuf;
  /// Encoded responses awaiting the IO thread. Workers append under the
  /// mutex; only the IO thread writes the socket.
  std::mutex out_mutex;
  std::string outbox;
  /// EPOLLOUT currently armed (IO thread only).
  bool epollout = false;
  /// Set by the IO thread when the fd is closed; workers check it before
  /// appending (late appends are harmless — the bytes are never sent).
  std::atomic<bool> closed{false};
  /// Set by workers to ask the IO thread to drop the connection (outbox
  /// overflow: the client stopped reading).
  std::atomic<bool> close_requested{false};
};

struct Server::Waiter {
  std::shared_ptr<Connection> conn;
  uint64_t request_id = 0;
  int64_t deadline_abs_nanos = kNoDeadline;
  int64_t receipt_nanos = 0;
  MsgType type = MsgType::kPing;
  /// BGP only: this waiter's variable names in canonical column order,
  /// so a coalesced waiter's response names columns in its own terms.
  std::vector<std::string> bgp_vars;
};

struct Server::WorkItem {
  std::string key;
  WireRequest request;
  /// Decoded + validated at admission (kBgp only).
  serve::BgpQuery bgp_query;
};

struct Server::Counters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> connections_open{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> responses_dropped{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> shed_unavailable{0};
  std::atomic<uint64_t> shed_deadline_queue{0};
  std::atomic<uint64_t> shed_shutdown{0};
  std::atomic<uint64_t> flights_executed{0};
  std::atomic<uint64_t> flights_shed{0};
};

Server::Server(serve::QueryEngine* engine)
    : engine_(engine), counters_(std::make_unique<Counters>()) {}

Server::~Server() { Stop(); }

Status Server::Start(const ServerConfig& config) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) {
    return Status::AlreadyExists("server already started");
  }
  config_ = config;
  if (config_.num_workers == 0) config_.num_workers = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address '" + config_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IoError("bind " + config_.host + ":" +
                                    std::to_string(config_.port) + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status =
        Status::IoError("listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status status =
        Status::IoError("epoll/eventfd: " + std::string(std::strerror(errno)));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_.store(false, std::memory_order_release);
  io_stop_.store(false, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  AKB_GAUGE_SET("akb.net.workers", int64_t(config_.num_workers));
  return Status::OK();
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  running_.store(false, std::memory_order_release);

  // Phase 1: workers drain the queue, shedding every remaining flight
  // with kUnavailable so no client is left hanging on a silent drop.
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // Phase 2: the IO thread makes a final best-effort flush of every
  // outbox, then closes all sockets and exits.
  io_stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  io_thread_.join();

  ::close(epoll_fd_);
  ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
}

NetStats Server::stats() const {
  NetStats stats;
  const Counters& c = *counters_;
  stats.connections_accepted = c.connections_accepted.load();
  stats.connections_closed = c.connections_closed.load();
  stats.connections_rejected = c.connections_rejected.load();
  stats.connections_open = c.connections_open.load();
  stats.requests = c.requests.load();
  stats.responses = c.responses.load();
  stats.responses_dropped = c.responses_dropped.load();
  stats.protocol_errors = c.protocol_errors.load();
  stats.bytes_read = c.bytes_read.load();
  stats.bytes_written = c.bytes_written.load();
  stats.shed_unavailable = c.shed_unavailable.load();
  stats.shed_deadline_queue = c.shed_deadline_queue.load();
  stats.shed_shutdown = c.shed_shutdown.load();
  stats.flights_executed = c.flights_executed.load();
  stats.flights_shed = c.flights_shed.load();
  {
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(queue_mutex_));
    stats.queue_depth = queue_.size();
  }
  stats.singleflight = flights_.Stats();
  return stats;
}

// ---------------------------------------------------------------- IO side

void Server::IoLoop() {
  epoll_event events[64];
  while (!io_stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> pending;
        {
          std::lock_guard<std::mutex> lock(write_pending_mutex_);
          pending.swap(write_pending_);
        }
        for (const auto& conn : pending) {
          if (conn->close_requested.load(std::memory_order_acquire)) {
            CloseConnection(conn);
          } else {
            FlushConnection(conn);
          }
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      if (!conn->closed.load(std::memory_order_acquire) &&
          (events[i].events & EPOLLOUT)) {
        HandleWritable(conn);
      }
    }
  }
  // Final flush: answer what we still can, then tear everything down.
  {
    std::lock_guard<std::mutex> lock(write_pending_mutex_);
    write_pending_.clear();
  }
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (const auto& conn : remaining) {
    FlushConnection(conn);
    CloseConnection(conn);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::AcceptPending() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (connections_.size() >= config_.max_connections) {
      counters_->connections_rejected.fetch_add(1);
      AKB_COUNTER_INC("akb.net.connections_rejected");
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    connections_.emplace(fd, std::move(conn));
    counters_->connections_accepted.fetch_add(1);
    counters_->connections_open.store(connections_.size());
    AKB_COUNTER_INC("akb.net.connections_accepted");
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, size_t(n));
      counters_->bytes_read.fetch_add(uint64_t(n));
      continue;
    }
    if (n == 0) {  // orderly EOF
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }
  size_t consumed = 0;
  while (true) {
    std::string_view payload;
    Result<size_t> frame = ExtractFrame(
        std::string_view(conn->inbuf).substr(consumed),
        config_.max_frame_bytes, &payload);
    if (!frame.ok()) {
      counters_->protocol_errors.fetch_add(1);
      AKB_COUNTER_INC("akb.net.protocol_errors");
      CloseConnection(conn);
      return;
    }
    if (*frame == 0) break;
    bool keep = HandleFrame(conn, payload);
    consumed += *frame;
    if (!keep) {
      // Protocol error: flush the error response we just queued, then
      // drop the connection.
      FlushConnection(conn);
      CloseConnection(conn);
      return;
    }
  }
  if (consumed > 0) conn->inbuf.erase(0, consumed);
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         std::string_view payload) {
  counters_->requests.fetch_add(1);
  AKB_COUNTER_INC("akb.net.requests");
  const int64_t now = NowNanos();

  WireRequest request;
  Status decoded = DecodeRequest(payload, &request);
  if (!decoded.ok()) {
    counters_->protocol_errors.fetch_add(1);
    AKB_COUNTER_INC("akb.net.protocol_errors");
    WireResponse response;
    response.type = MsgType::kPing;
    response.request_id = request.request_id;
    response.status = decoded;
    Respond(conn, response);
    return false;
  }

  Waiter waiter;
  waiter.conn = conn;
  waiter.request_id = request.request_id;
  waiter.receipt_nanos = now;
  waiter.deadline_abs_nanos = request.deadline_nanos > 0
                                  ? now + request.deadline_nanos
                                  : kNoDeadline;
  waiter.type = request.type;

  WorkItem item;
  item.request = request;

  switch (request.type) {
    case MsgType::kPing: {
      WireResponse response;
      response.type = MsgType::kPing;
      response.request_id = request.request_id;
      Respond(conn, response);
      return true;
    }
    case MsgType::kPattern: {
      // Canonical pattern key: the three term ids are the pattern.
      item.key.reserve(1 + 3 * sizeof(uint32_t));
      item.key.push_back('P');
      char bytes[3 * sizeof(uint32_t)];
      std::memcpy(bytes, &request.pattern.subject, sizeof(uint32_t));
      std::memcpy(bytes + 4, &request.pattern.predicate, sizeof(uint32_t));
      std::memcpy(bytes + 8, &request.pattern.object, sizeof(uint32_t));
      item.key.append(bytes, sizeof(bytes));
      break;
    }
    case MsgType::kBgp: {
      serve::BgpQuery query;
      for (const WireBgpPattern& pattern : request.bgp_patterns) {
        serve::BgpTerm terms[3];
        const WireBgpTerm* wire[3] = {&pattern.s, &pattern.p, &pattern.o};
        for (int i = 0; i < 3; ++i) {
          if (wire[i]->is_var) {
            std::string name("v");
            name.append(std::to_string(wire[i]->value));
            terms[i] = query.Var(name);
          } else {
            terms[i] = serve::BgpQuery::Bound(wire[i]->value);
          }
        }
        query.Add(terms[0], terms[1], terms[2]);
      }
      Status valid = serve::ValidateBgp(query);
      if (!valid.ok()) {
        WireResponse response;
        response.type = MsgType::kBgp;
        response.request_id = request.request_id;
        response.status = valid;
        Respond(conn, response);
        return true;
      }
      // Coalesce on the canonical join key: pattern reorderings and
      // variable renamings of the same join share one flight (and the
      // row limit changes the outcome, so it is part of the key). Each
      // waiter keeps its own names in canonical column order, so the
      // fan-out labels columns in every requester's own terms.
      serve::BgpCanonical canon = serve::CanonicalizeBgp(query);
      item.key.reserve(1 + canon.key.size() + 16);
      item.key.push_back('B');
      item.key.append(canon.key);
      item.key.append("|L");
      item.key.append(std::to_string(request.row_limit));
      waiter.bgp_vars.resize(query.num_vars());
      for (size_t slot = 0; slot < query.num_vars(); ++slot) {
        waiter.bgp_vars[canon.var_rank[slot]] = query.var_names()[slot];
      }
      item.bgp_query = std::move(query);
      break;
    }
  }

  if (!config_.enable_coalescing) {
    // Every request is its own flight: unique keys never collide.
    item.key.append("#");
    item.key.append(
        std::to_string(unique_seq_.fetch_add(1, std::memory_order_relaxed)));
  }

  if (flights_.Attach(item.key, std::move(waiter)) ==
      SingleFlightTable<Waiter>::Role::kWaiter) {
    // Coalesced onto a pending flight: no new backend work, nothing to
    // queue, and admission control does not apply.
    AKB_COUNTER_INC("akb.net.coalesced_requests");
    return true;
  }

  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= config_.max_queue_depth) {
      lock.unlock();
      // Shed the flight we just created (any waiter that managed to
      // attach in between is shed with it — it joined a doomed flight).
      std::vector<Waiter> shed = flights_.Take(item.key);
      WireResponse response;
      response.type = request.type;
      response.status = Status::Unavailable(
          "work queue full (" + std::to_string(config_.max_queue_depth) +
          " pending executions); retry after backoff");
      response.retry_after_nanos = config_.retry_after_nanos;
      for (const Waiter& w : shed) {
        response.request_id = w.request_id;
        Respond(w.conn, response);
        counters_->shed_unavailable.fetch_add(1);
        AKB_COUNTER_INC("akb.net.shed_unavailable");
      }
      // The flight was taken back unexecuted: account it with the other
      // skipped flights so executed + shed == taken stays exact.
      counters_->flights_shed.fetch_add(1);
      return true;
    }
    queue_.push_back(std::move(item));
    AKB_GAUGE_ADD("akb.net.queue_depth", 1);
  }
  queue_cv_.notify_one();
  return true;
}

void Server::HandleWritable(const std::shared_ptr<Connection>& conn) {
  FlushConnection(conn);
}

void Server::FlushConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool write_error = false;
  bool want_write;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    while (!conn->outbox.empty()) {
      // MSG_NOSIGNAL: a peer that vanished mid-write is a close, not a
      // process-wide SIGPIPE.
      ssize_t n = ::send(conn->fd, conn->outbox.data(),
                         std::min<size_t>(conn->outbox.size(), 256 * 1024),
                         MSG_NOSIGNAL);
      if (n > 0) {
        conn->outbox.erase(0, size_t(n));
        counters_->bytes_written.fetch_add(uint64_t(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      write_error = true;
      break;
    }
    want_write = !conn->outbox.empty() && !write_error;
  }
  if (write_error) {
    CloseConnection(conn);
    return;
  }
  if (want_write != conn->epollout) {
    conn->epollout = want_write;
    UpdateWriteInterest(conn);
  }
}

void Server::UpdateWriteInterest(const std::shared_ptr<Connection>& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (conn->epollout ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_.erase(conn->fd);
  counters_->connections_closed.fetch_add(1);
  counters_->connections_open.store(connections_.size());
}

// ------------------------------------------------------------ worker side

void Server::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      AKB_GAUGE_ADD("akb.net.queue_depth", -1);
    }
    ExecuteFlight(item);
  }
}

void Server::ExecuteFlight(const WorkItem& item) {
  if (config_.worker_hook_for_testing) config_.worker_hook_for_testing();

  std::vector<Waiter> waiters = flights_.Take(item.key);
  const int64_t now = NowNanos();

  if (stopping_.load(std::memory_order_acquire)) {
    WireResponse response;
    response.type = item.request.type;
    response.status = Status::Unavailable("server shutting down");
    for (const Waiter& waiter : waiters) {
      response.request_id = waiter.request_id;
      SendToWaiter(waiter, &response);
      counters_->shed_shutdown.fetch_add(1);
      AKB_COUNTER_INC("akb.net.shed_shutdown");
    }
    counters_->flights_shed.fetch_add(1);
    return;
  }

  // Queue-side deadline enforcement: expired waiters are answered with
  // kDeadlineExceeded and never reach the backend. Fan-out order keeps
  // attach order, so waiters[0] is the flight's leader.
  std::vector<size_t> live;
  live.reserve(waiters.size());
  for (size_t i = 0; i < waiters.size(); ++i) {
    const Waiter& waiter = waiters[i];
    if (waiter.deadline_abs_nanos <= now) {
      WireResponse response;
      response.type = waiter.type;
      response.request_id = waiter.request_id;
      response.coalesced = i != 0;
      response.status = Status::DeadlineExceeded(
          "deadline expired after " +
          std::to_string(now - waiter.receipt_nanos) + " ns in queue");
      SendToWaiter(waiter, &response);
      counters_->shed_deadline_queue.fetch_add(1);
      AKB_COUNTER_INC("akb.net.shed_deadline");
    } else {
      live.push_back(i);
    }
  }
  if (live.empty()) {
    // Every waiter's deadline passed: the whole flight is skipped and
    // the backend never runs (pinned by tests/net/net_deadline_test.cc).
    counters_->flights_shed.fetch_add(1);
    AKB_COUNTER_INC("akb.serve.coalesced_shed");
    return;
  }

  counters_->flights_executed.fetch_add(1);
  AKB_COUNTER_INC("akb.serve.coalesced_leaders");
  if (live.size() > 1) {
    AKB_COUNTER_ADD("akb.serve.coalesced_waiters", int64_t(live.size() - 1));
  }

  WireResponse response;
  response.type = item.request.type;
  switch (item.request.type) {
    case MsgType::kPattern: {
      serve::QueryResult result = engine_->Execute(item.request.pattern);
      response.cache_hit = result.cache_hit;
      response.matches.assign(result.matches->begin(), result.matches->end());
      break;
    }
    case MsgType::kBgp: {
      serve::BgpOptions options;
      options.limit = size_t(item.request.row_limit);
      serve::BgpExecResult result =
          engine_->ExecuteBgp(item.bgp_query, options);
      response.status = result.status;
      response.cache_hit = result.cache_hit;
      if (result.rows) {
        response.rows = result.rows->data;
        response.num_rows = result.rows->num_rows;
      }
      break;
    }
    case MsgType::kPing:
      break;
  }

  const int64_t done = NowNanos();
  for (size_t i : live) {
    const Waiter& waiter = waiters[i];
    response.request_id = waiter.request_id;
    response.coalesced = i != 0;
    if (waiter.type == MsgType::kBgp) response.vars = waiter.bgp_vars;
    SendToWaiter(waiter, &response);
    AKB_HISTOGRAM_RECORD("akb.net.request.nanos",
                         done - waiter.receipt_nanos);
  }
}

void Server::SendToWaiter(const Waiter& waiter, WireResponse* response) {
  Respond(waiter.conn, *response);
}

void Server::Respond(const std::shared_ptr<Connection>& conn,
                     const WireResponse& response) {
  if (conn->closed.load(std::memory_order_acquire)) {
    counters_->responses_dropped.fetch_add(1);
    return;
  }
  std::string bytes;
  EncodeResponse(response, &bytes);
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    if (conn->outbox.size() + bytes.size() > config_.max_outbox_bytes) {
      overflow = true;
    } else {
      conn->outbox.append(bytes);
    }
  }
  if (overflow) {
    // The client stopped reading; drop it rather than buffer unboundedly.
    conn->close_requested.store(true, std::memory_order_release);
    counters_->responses_dropped.fetch_add(1);
  } else {
    counters_->responses.fetch_add(1);
    AKB_COUNTER_INC("akb.net.responses");
  }
  {
    std::lock_guard<std::mutex> lock(write_pending_mutex_);
    write_pending_.push_back(conn);
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void FillNetStatusReport(const Server& server, obs::StatusReport* report) {
  NetStats stats = server.stats();
  obs::Json net = obs::Json::Object();
  net.Set("running", server.running());
  net.Set("port", int64_t(server.port()));

  obs::Json connections = obs::Json::Object();
  connections.Set("open", int64_t(stats.connections_open));
  connections.Set("accepted", int64_t(stats.connections_accepted));
  connections.Set("closed", int64_t(stats.connections_closed));
  connections.Set("rejected", int64_t(stats.connections_rejected));
  net.Set("connections", std::move(connections));

  obs::Json traffic = obs::Json::Object();
  traffic.Set("requests", int64_t(stats.requests));
  traffic.Set("responses", int64_t(stats.responses));
  traffic.Set("responses_dropped", int64_t(stats.responses_dropped));
  traffic.Set("protocol_errors", int64_t(stats.protocol_errors));
  traffic.Set("bytes_read", int64_t(stats.bytes_read));
  traffic.Set("bytes_written", int64_t(stats.bytes_written));
  net.Set("traffic", std::move(traffic));

  obs::Json queue = obs::Json::Object();
  queue.Set("depth", int64_t(stats.queue_depth));
  queue.Set("flights_executed", int64_t(stats.flights_executed));
  queue.Set("flights_shed", int64_t(stats.flights_shed));
  net.Set("queue", std::move(queue));

  obs::Json sheds = obs::Json::Object();
  sheds.Set("unavailable", int64_t(stats.shed_unavailable));
  sheds.Set("deadline_queue", int64_t(stats.shed_deadline_queue));
  sheds.Set("shutdown", int64_t(stats.shed_shutdown));
  net.Set("sheds", std::move(sheds));

  obs::Json coalescing = obs::Json::Object();
  coalescing.Set("attaches", int64_t(stats.singleflight.attaches));
  coalescing.Set("leaders", int64_t(stats.singleflight.leaders));
  coalescing.Set("coalesced_waiters",
                 int64_t(stats.singleflight.coalesced_waiters));
  coalescing.Set("flights_inflight",
                 int64_t(stats.singleflight.flights_inflight));
  coalescing.Set("peak_inflight", int64_t(stats.singleflight.peak_inflight));
  net.Set("singleflight", std::move(coalescing));

  report->AddSection("net", std::move(net));
}

}  // namespace akb::net

// Blocking client for the akb::net wire protocol — used by `akb_cli
// net-bench`, the net tests, and anything else that wants to talk to a
// serve-net process without pulling in an event loop.
//
// One Client owns one TCP connection. Call() is the simple path: send a
// request, block for the matching response. Send()/Receive() expose the
// pipelined path — write several requests back-to-back, then drain the
// responses (they carry the request_id, and may legitimately arrive in a
// different order when some were shed queue-side and others executed).
//
// Not thread-safe: one thread per Client (net-bench opens one per client
// thread, which also matches how real load generators drive a server).
#ifndef AKB_NET_CLIENT_H_
#define AKB_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/wire.h"

namespace akb::net {

class Client {
 public:
  Client() = default;
  ~Client();  // closes the socket

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port. `recv_timeout_nanos` bounds every blocking
  /// read (0 = wait forever); a timeout surfaces as kDeadlineExceeded.
  Status Connect(const std::string& host, uint16_t port,
                 int64_t recv_timeout_nanos = 0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Writes one request frame (blocking until fully written).
  Status Send(const WireRequest& request);

  /// Blocks for the next response frame. kIoError on EOF/reset — which a
  /// shutting-down server may legitimately cause mid-flight.
  Status Receive(WireResponse* out);

  /// Send + Receive; checks the response echoes `request.request_id`.
  Status Call(const WireRequest& request, WireResponse* out);

 private:
  int fd_ = -1;
  std::string inbuf_;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace akb::net

#endif  // AKB_NET_CLIENT_H_

#include "net/wire.h"

#include <cstring>

namespace akb::net {

namespace {

// Little-endian fixed-width append/read. The serve path only runs on
// little-endian hosts today (the v2 snapshot format shares the
// assumption); memcpy keeps every access alignment-safe.
template <typename T>
void AppendInt(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

// Sequential reader over a payload; every Read checks remaining bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* out) {
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (data_.size() - pos_ < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void BeginFrame(std::string* out, size_t* length_at) {
  *length_at = out->size();
  AppendInt<uint32_t>(out, 0);  // patched by EndFrame
}

void EndFrame(std::string* out, size_t length_at) {
  uint32_t payload = uint32_t(out->size() - length_at - sizeof(uint32_t));
  std::memcpy(out->data() + length_at, &payload, sizeof(uint32_t));
}

Status Malformed(const char* what) {
  return Status::ParseError(std::string("wire: ") + what);
}

bool ValidType(uint8_t type) {
  return type == uint8_t(MsgType::kPattern) || type == uint8_t(MsgType::kBgp) ||
         type == uint8_t(MsgType::kPing);
}

}  // namespace

void EncodeRequest(const WireRequest& request, std::string* out) {
  size_t length_at;
  BeginFrame(out, &length_at);
  AppendInt<uint8_t>(out, kWireVersion);
  AppendInt<uint8_t>(out, uint8_t(request.type));
  AppendInt<uint64_t>(out, request.request_id);
  AppendInt<uint64_t>(out, uint64_t(request.deadline_nanos));
  switch (request.type) {
    case MsgType::kPattern:
      AppendInt<uint32_t>(out, request.pattern.subject);
      AppendInt<uint32_t>(out, request.pattern.predicate);
      AppendInt<uint32_t>(out, request.pattern.object);
      break;
    case MsgType::kBgp:
      AppendInt<uint8_t>(out, uint8_t(request.bgp_patterns.size()));
      for (const WireBgpPattern& pattern : request.bgp_patterns) {
        for (const WireBgpTerm* term : {&pattern.s, &pattern.p, &pattern.o}) {
          AppendInt<uint8_t>(out, term->is_var ? 1 : 0);
          AppendInt<uint32_t>(out, term->value);
        }
      }
      AppendInt<uint64_t>(out, request.row_limit);
      break;
    case MsgType::kPing:
      break;
  }
  EndFrame(out, length_at);
}

void EncodeResponse(const WireResponse& response, std::string* out) {
  size_t length_at;
  BeginFrame(out, &length_at);
  AppendInt<uint8_t>(out, kWireVersion);
  AppendInt<uint8_t>(out, uint8_t(response.type));
  AppendInt<uint64_t>(out, response.request_id);
  AppendInt<uint8_t>(out, uint8_t(response.status.code()));
  uint8_t flags = 0;
  if (response.cache_hit) flags |= 1;
  if (response.coalesced) flags |= 2;
  AppendInt<uint8_t>(out, flags);
  AppendInt<uint64_t>(out, uint64_t(response.retry_after_nanos));
  const std::string& message = response.status.message();
  AppendInt<uint32_t>(out, uint32_t(message.size()));
  out->append(message);
  if (response.status.ok()) {
    switch (response.type) {
      case MsgType::kPattern:
        AppendInt<uint64_t>(out, uint64_t(response.matches.size()));
        for (uint64_t match : response.matches) {
          AppendInt<uint64_t>(out, match);
        }
        break;
      case MsgType::kBgp: {
        AppendInt<uint16_t>(out, uint16_t(response.vars.size()));
        for (const std::string& var : response.vars) {
          AppendInt<uint16_t>(out, uint16_t(var.size()));
          out->append(var);
        }
        AppendInt<uint64_t>(out, response.num_rows);
        for (rdf::TermId id : response.rows) {
          AppendInt<uint32_t>(out, id);
        }
        break;
      }
      case MsgType::kPing:
        break;
    }
  }
  EndFrame(out, length_at);
}

Status DecodeRequest(std::string_view payload, WireRequest* out) {
  Cursor cursor(payload);
  uint8_t version = 0, type = 0;
  uint64_t deadline = 0;
  if (!cursor.Read(&version) || !cursor.Read(&type) ||
      !cursor.Read(&out->request_id) || !cursor.Read(&deadline)) {
    return Malformed("truncated request header");
  }
  if (version != kWireVersion) {
    return Malformed("unsupported request version");
  }
  if (!ValidType(type)) return Malformed("unknown request type");
  out->type = MsgType(type);
  out->deadline_nanos = int64_t(deadline);
  switch (out->type) {
    case MsgType::kPattern:
      if (!cursor.Read(&out->pattern.subject) ||
          !cursor.Read(&out->pattern.predicate) ||
          !cursor.Read(&out->pattern.object)) {
        return Malformed("truncated pattern body");
      }
      break;
    case MsgType::kBgp: {
      uint8_t num_patterns = 0;
      if (!cursor.Read(&num_patterns)) return Malformed("truncated BGP body");
      out->bgp_patterns.clear();
      out->bgp_patterns.reserve(num_patterns);
      for (size_t i = 0; i < num_patterns; ++i) {
        WireBgpPattern pattern;
        for (WireBgpTerm* term : {&pattern.s, &pattern.p, &pattern.o}) {
          uint8_t is_var = 0;
          if (!cursor.Read(&is_var) || !cursor.Read(&term->value)) {
            return Malformed("truncated BGP body");
          }
          if (is_var > 1) return Malformed("bad BGP term tag");
          term->is_var = is_var == 1;
        }
        out->bgp_patterns.push_back(pattern);
      }
      if (!cursor.Read(&out->row_limit)) return Malformed("truncated BGP body");
      break;
    }
    case MsgType::kPing:
      break;
  }
  if (cursor.remaining() != 0) {
    return Malformed("trailing bytes after request body");
  }
  return Status::OK();
}

Status DecodeResponse(std::string_view payload, WireResponse* out) {
  Cursor cursor(payload);
  uint8_t version = 0, type = 0, code = 0, flags = 0;
  uint64_t retry_after = 0;
  uint32_t message_len = 0;
  if (!cursor.Read(&version) || !cursor.Read(&type) ||
      !cursor.Read(&out->request_id) || !cursor.Read(&code) ||
      !cursor.Read(&flags) || !cursor.Read(&retry_after) ||
      !cursor.Read(&message_len)) {
    return Malformed("truncated response header");
  }
  if (version != kWireVersion) {
    return Malformed("unsupported response version");
  }
  if (!ValidType(type)) return Malformed("unknown response type");
  if (code > uint8_t(StatusCode::kDeadlineExceeded)) {
    return Malformed("unknown response status code");
  }
  out->type = MsgType(type);
  out->cache_hit = (flags & 1) != 0;
  out->coalesced = (flags & 2) != 0;
  out->retry_after_nanos = int64_t(retry_after);
  std::string_view message;
  if (!cursor.ReadBytes(message_len, &message)) {
    return Malformed("truncated response message");
  }
  out->status = code == 0 ? Status::OK()
                          : Status(StatusCode(code), std::string(message));
  out->matches.clear();
  out->vars.clear();
  out->rows.clear();
  out->num_rows = 0;
  if (out->status.ok()) {
    switch (out->type) {
      case MsgType::kPattern: {
        uint64_t num_matches = 0;
        // Divide instead of multiplying: a hostile count can't overflow
        // into a small product and trigger a huge resize.
        if (!cursor.Read(&num_matches) ||
            num_matches > cursor.remaining() / sizeof(uint64_t)) {
          return Malformed("truncated match list");
        }
        out->matches.resize(num_matches);
        for (uint64_t& match : out->matches) cursor.Read(&match);
        break;
      }
      case MsgType::kBgp: {
        uint16_t num_vars = 0;
        if (!cursor.Read(&num_vars)) return Malformed("truncated BGP rows");
        out->vars.reserve(num_vars);
        for (size_t i = 0; i < num_vars; ++i) {
          uint16_t len = 0;
          std::string_view name;
          if (!cursor.Read(&len) || !cursor.ReadBytes(len, &name)) {
            return Malformed("truncated BGP rows");
          }
          out->vars.emplace_back(name);
        }
        if (!cursor.Read(&out->num_rows)) {
          return Malformed("truncated BGP rows");
        }
        // Same overflow-safe bound: rows x vars cells of u32 each.
        uint64_t max_cells = cursor.remaining() / sizeof(uint32_t);
        if (num_vars != 0 && out->num_rows > max_cells / num_vars) {
          return Malformed("truncated BGP rows");
        }
        uint64_t cells = out->num_rows * num_vars;
        out->rows.resize(cells);
        for (rdf::TermId& id : out->rows) cursor.Read(&id);
        break;
      }
      case MsgType::kPing:
        break;
    }
  }
  if (cursor.remaining() != 0) {
    return Malformed("trailing bytes after response body");
  }
  return Status::OK();
}

Result<size_t> ExtractFrame(std::string_view buffer, size_t max_frame,
                            std::string_view* payload) {
  if (buffer.size() < sizeof(uint32_t)) return size_t(0);
  uint32_t length = 0;
  std::memcpy(&length, buffer.data(), sizeof(uint32_t));
  if (length > max_frame) {
    return Status::ParseError("wire: frame of " + std::to_string(length) +
                              " bytes exceeds the " +
                              std::to_string(max_frame) + "-byte limit");
  }
  if (buffer.size() - sizeof(uint32_t) < length) return size_t(0);
  *payload = buffer.substr(sizeof(uint32_t), length);
  return sizeof(uint32_t) + size_t(length);
}

}  // namespace akb::net

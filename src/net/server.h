// akb::net server — the epoll front door over serve::QueryEngine.
//
// One IO thread owns every socket: it accepts loopback/TCP connections,
// reads frames (net/wire.h), and flushes responses, all non-blocking
// behind a level-triggered epoll. Decoded requests are routed through the
// single-flight table (net/single_flight.h) and executed by a small pool
// of worker threads; workers never touch a socket — they append encoded
// responses to per-connection outboxes and wake the IO thread through an
// eventfd.
//
// Request lifecycle and the points where work is shed:
//
//   accept ──► read frame ──► decode ──► admission ──► queue ──► execute
//                               │            │            │
//                        kParseError    kUnavailable  kDeadlineExceeded
//                        (respond, then (queue full;   (expired while
//                        close the      retry-after    queued; backend
//                        connection)    hint attached) never runs)
//
// Single-flight coalescing: identical concurrent requests — same
// canonical triple pattern, or BGP joins with the same CanonicalizeBgp
// key and row limit — share one queued execution. The first request
// leads; the rest attach as waiters and are fanned the leader's result,
// so a hot-key cache-miss stampede costs one index scan. Results are a
// pure function of the immutable KbView, which is what makes fan-out
// byte-identical to executing each request alone.
//
// Admission control: the work queue is bounded (max_queue_depth pending
// executions). A request that would create a flight beyond the bound is
// shed with kUnavailable and a retry-after hint — attaching to an
// existing flight is always admitted, because it adds no backend work.
// Connections beyond max_connections are accepted and immediately closed.
//
// Deadlines are enforced on both sides of the queue: the budget rides the
// wire with the request, and a worker re-checks every waiter's deadline
// when it claims a flight — expired waiters get kDeadlineExceeded without
// the backend ever running for them (if every waiter expired, the whole
// flight is skipped).
//
// Metrics land under akb.net.* (requests, responses, sheds, queue depth,
// request latency) and akb.serve.coalesced_* (leaders = backend
// executions, waiters = requests served from another request's
// execution); FillNetStatusReport contributes a "net" statusz section.
#ifndef AKB_NET_SERVER_H_
#define AKB_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/single_flight.h"
#include "net/wire.h"
#include "obs/statusz.h"
#include "serve/query_engine.h"

namespace akb::net {

/// Steady-clock nanoseconds — the time base for deadlines server-side.
int64_t NowNanos();

struct ServerConfig {
  /// Listen address. Port 0 binds an ephemeral port (read it back with
  /// Server::port()).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Worker threads executing queued flights.
  size_t num_workers = 4;
  /// Accepted connections beyond this are immediately closed.
  size_t max_connections = 1024;
  /// Pending (queued, not yet executing) flights; one more is shed with
  /// kUnavailable.
  size_t max_queue_depth = 1024;
  /// Backoff hint attached to kUnavailable sheds.
  int64_t retry_after_nanos = 20'000'000;  // 20 ms
  /// Frames larger than this are a protocol error.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// A connection whose outbox exceeds this (client not reading) is
  /// dropped instead of buffering unboundedly.
  size_t max_outbox_bytes = 64u << 20;
  /// Single-flight coalescing of identical concurrent requests. Off,
  /// every request is its own flight (the bench's baseline mode).
  bool enable_coalescing = true;
  /// Test hook: runs on the worker thread after a flight is dequeued and
  /// before its deadline re-check — lets tests hold the queue busy to
  /// pin shed/coalescing behavior deterministically.
  std::function<void()> worker_hook_for_testing;
};

/// Monotonic server counters (snapshot; internally consistent with the
/// single-flight invariants — see net/single_flight.h).
struct NetStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_rejected = 0;  ///< over max_connections
  uint64_t connections_open = 0;
  uint64_t requests = 0;   ///< decoded frames, pings included
  uint64_t responses = 0;  ///< frames queued for write
  uint64_t responses_dropped = 0;  ///< waiter's connection died first
  uint64_t protocol_errors = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t shed_unavailable = 0;    ///< queue full at admission
  uint64_t shed_deadline_queue = 0; ///< deadline expired while queued
  uint64_t shed_shutdown = 0;       ///< queued work answered during Stop()
  uint64_t flights_executed = 0;    ///< backend executions
  uint64_t flights_shed = 0;        ///< flights skipped, backend untouched
  uint64_t queue_depth = 0;         ///< pending right now
  SingleFlightStats singleflight;
};

class Server {
 public:
  /// `engine` (and its KbView) must outlive the server.
  explicit Server(serve::QueryEngine* engine);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the IO + worker threads. kIoError when
  /// the socket can't be bound; kAlreadyExists when already started.
  Status Start(const ServerConfig& config);

  /// The bound port (valid after Start succeeded).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops accepting, sheds queued work with kUnavailable, flushes what
  /// it can, closes every connection, and joins all threads. Idempotent.
  void Stop();

  NetStats stats() const;

 private:
  struct Connection;
  struct Waiter;
  struct WorkItem;

  void IoLoop();
  void WorkerLoop();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  void AcceptPending();
  /// Decode + admission for one frame payload. Returns false when the
  /// connection must be closed (protocol error).
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   std::string_view payload);
  void ExecuteFlight(const WorkItem& item);
  void Respond(const std::shared_ptr<Connection>& conn,
               const WireResponse& response);
  void SendToWaiter(const Waiter& waiter, WireResponse* response);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void FlushConnection(const std::shared_ptr<Connection>& conn);
  void UpdateWriteInterest(const std::shared_ptr<Connection>& conn);

  serve::QueryEngine* engine_;
  ServerConfig config_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> io_stop_{false};
  std::mutex lifecycle_mutex_;
  bool started_ = false;
  bool stopped_ = false;

  // IO-thread-owned connection registry (fd -> connection).
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  // Bounded work queue of flights awaiting a worker.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  // Connections with freshly appended outbox bytes, handed from workers
  // to the IO thread (paired with an eventfd wakeup).
  std::mutex write_pending_mutex_;
  std::vector<std::shared_ptr<Connection>> write_pending_;

  SingleFlightTable<Waiter> flights_;
  /// Distinguishes coalescing-off flights (unique keys).
  std::atomic<uint64_t> unique_seq_{0};

  // Counters behind stats(). Plain atomics: single writers per event.
  struct Counters;
  std::unique_ptr<Counters> counters_;
};

/// Contributes the "net" section (connections, queue, sheds,
/// single-flight coalescing) to a statusz report.
void FillNetStatusReport(const Server& server, obs::StatusReport* report);

}  // namespace akb::net

#endif  // AKB_NET_SERVER_H_

#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>

namespace akb::net {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status Client::Connect(const std::string& host, uint16_t port,
                       int64_t recv_timeout_nanos) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IoError("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    Close();
    return status;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_nanos > 0) {
    timeval tv{};
    tv.tv_sec = time_t(recv_timeout_nanos / 1'000'000'000);
    tv.tv_usec = suseconds_t((recv_timeout_nanos % 1'000'000'000) / 1'000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return Status::OK();
}

Status Client::Send(const WireRequest& request) {
  if (fd_ < 0) return Status::IoError("not connected");
  std::string frame;
  EncodeRequest(request, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a server that closed mid-flight must surface as
    // kIoError (EPIPE), not kill the process with SIGPIPE.
    ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += size_t(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError("write: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status Client::Receive(WireResponse* out) {
  if (fd_ < 0) return Status::IoError("not connected");
  while (true) {
    std::string_view payload;
    Result<size_t> frame =
        ExtractFrame(inbuf_, max_frame_bytes_, &payload);
    if (!frame.ok()) return frame.status();
    if (*frame != 0) {
      Status decoded = DecodeResponse(payload, out);
      inbuf_.erase(0, *frame);
      return decoded;
    }
    char buf[64 * 1024];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      inbuf_.append(buf, size_t(n));
      continue;
    }
    if (n == 0) return Status::IoError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("receive timed out");
    }
    return Status::IoError("read: " + std::string(std::strerror(errno)));
  }
}

Status Client::Call(const WireRequest& request, WireResponse* out) {
  AKB_RETURN_IF_ERROR(Send(request));
  AKB_RETURN_IF_ERROR(Receive(out));
  if (out->request_id != request.request_id) {
    return Status::Internal(
        "response id " + std::to_string(out->request_id) +
        " does not match request id " + std::to_string(request.request_id));
  }
  return Status::OK();
}

}  // namespace akb::net

// Single-flight coalescing table — the perf core of the network front
// door.
//
// A flight is one pending backend execution, keyed by the canonical form
// of the request (a triple pattern's bytes, or a BGP join's
// CanonicalizeBgp key). The first request for a key *leads* the flight;
// every identical request that arrives while the flight is still pending
// *attaches* as a waiter instead of enqueuing its own execution. When a
// worker takes the flight it executes the backend once and fans the
// result out to every waiter — a Zipf-hot cache-miss stampede costs one
// index scan instead of hundreds.
//
// The table holds flights from creation (Attach returning kLeader) until
// a worker claims them (Take). Requests arriving after Take start a new
// flight — results are a pure function of the immutable KbView, so a
// second execution returns identical bytes; coalescing is purely a
// throughput optimization and never changes what any caller observes.
//
// Stats are exact, counted under the table mutex, and extend the
// sharded-LRU invariants of serve/sharded_lru.h to the pending path:
//
//   leaders + coalesced_waiters == attaches        (every Attach is one
//                                                   or the other)
//   leaders - flights_taken     == flights_inflight (pending right now)
//   sum(Take().size())          == attaches         (every request is
//                                                   fanned out exactly once)
#ifndef AKB_NET_SINGLE_FLIGHT_H_
#define AKB_NET_SINGLE_FLIGHT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace akb::net {

struct SingleFlightStats {
  uint64_t attaches = 0;  ///< total requests routed through the table
  uint64_t leaders = 0;   ///< flights created (== backend executions due)
  uint64_t coalesced_waiters = 0;  ///< requests that joined an existing flight
  uint64_t flights_taken = 0;      ///< flights claimed by a worker
  uint64_t flights_inflight = 0;   ///< created but not yet taken
  uint64_t peak_inflight = 0;      ///< high-water mark of flights_inflight
};

/// Thread-safe table of pending flights. `Waiter` is the per-request
/// payload the server fans results out to (connection + request id +
/// deadline); the table never inspects it.
template <typename Waiter>
class SingleFlightTable {
 public:
  enum class Role { kLeader, kWaiter };

  SingleFlightTable() = default;
  SingleFlightTable(const SingleFlightTable&) = delete;
  SingleFlightTable& operator=(const SingleFlightTable&) = delete;

  /// Joins the flight for `key`, creating it if none is pending. Returns
  /// kLeader when this call created the flight — the caller must schedule
  /// exactly one execution that eventually calls Take(key) — and kWaiter
  /// when the request was coalesced onto a pending flight.
  Role Attach(const std::string& key, Waiter waiter) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.attaches;
    auto [it, created] = flights_.try_emplace(key);
    it->second.push_back(std::move(waiter));
    if (created) {
      ++stats_.leaders;
      ++stats_.flights_inflight;
      if (stats_.flights_inflight > stats_.peak_inflight) {
        stats_.peak_inflight = stats_.flights_inflight;
      }
      return Role::kLeader;
    }
    ++stats_.coalesced_waiters;
    return Role::kWaiter;
  }

  /// Claims the flight for `key`: removes it from the table and returns
  /// its waiters in attach order (the leader's waiter first). Requests
  /// for `key` arriving after this start a fresh flight. Precondition:
  /// a flight for `key` is pending (the caller was its leader).
  std::vector<Waiter> Take(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = flights_.find(key);
    std::vector<Waiter> waiters = std::move(it->second);
    flights_.erase(it);
    ++stats_.flights_taken;
    --stats_.flights_inflight;
    return waiters;
  }

  SingleFlightStats Stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<Waiter>> flights_;
  SingleFlightStats stats_;
};

}  // namespace akb::net

#endif  // AKB_NET_SINGLE_FLIGHT_H_

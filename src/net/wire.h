// akb::net wire protocol v1 — the length-prefixed binary framing the
// network front door speaks.
//
// Every message is one frame: a little-endian u32 payload length followed
// by that many payload bytes. Frames bigger than the receiver's
// max-frame budget are a protocol error (the connection is closed), so a
// hostile or confused peer can't make the server buffer unbounded input.
//
// Request payload:
//   u8  version        (kWireVersion)
//   u8  type           (1 = pattern, 2 = BGP join, 3 = ping)
//   u64 request_id     (echoed verbatim in the response; responses to
//                       pipelined requests may arrive out of order)
//   u64 deadline_nanos (time budget measured from server receipt;
//                       0 = no deadline. Shipping a relative budget
//                       instead of an absolute timestamp keeps the
//                       protocol clock-skew-free.)
//   body:
//     pattern: u32 s, u32 p, u32 o      (0 = kInvalidTermId = wildcard)
//     bgp:     u8 num_patterns, then per pattern 3 x {u8 is_var,
//              u32 term-id-or-var-slot}, then u64 row_limit
//     ping:    empty
//
// Response payload:
//   u8  version
//   u8  type           (echoes the request)
//   u64 request_id
//   u8  status_code    (StatusCode numeric value)
//   u8  flags          (bit 0: served from the result cache;
//                       bit 1: coalesced — this response was fanned out
//                       from another request's execution)
//   u64 retry_after_nanos  (backoff hint; nonzero only on kUnavailable)
//   u32 message_len, bytes (status message; empty when OK)
//   body (present only when status is OK):
//     pattern: u64 num_matches, then num_matches x u64 distinct-triple
//              indices into the served snapshot — exactly the vector a
//              direct QueryEngine::Execute returns, in the same order
//     bgp:     u16 num_vars, per var {u16 len, bytes}; u64 num_rows,
//              then num_rows x num_vars x u32 term ids (row-major,
//              canonical column order — the BgpRows layout)
//     ping:    empty
//
// Decode errors are typed: kParseError for malformed bytes (bad version,
// unknown type, truncated or oversize body, trailing garbage) — the
// server answers what it can and closes the connection.
#ifndef AKB_NET_WIRE_H_
#define AKB_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace akb::net {

inline constexpr uint8_t kWireVersion = 1;

/// Frames bigger than this are rejected by default (both sides).
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

enum class MsgType : uint8_t {
  kPattern = 1,
  kBgp = 2,
  kPing = 3,
};

/// One position of a wire BGP pattern: a bound term id or a variable
/// slot (slots are dense from 0; equal slots join).
struct WireBgpTerm {
  bool is_var = false;
  uint32_t value = 0;  ///< TermId when bound, variable slot when is_var
};

struct WireBgpPattern {
  WireBgpTerm s, p, o;
};

struct WireRequest {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  /// Time budget from server receipt, 0 = none.
  int64_t deadline_nanos = 0;
  /// kPattern body.
  rdf::TriplePattern pattern;
  /// kBgp body.
  std::vector<WireBgpPattern> bgp_patterns;
  uint64_t row_limit = 100'000;
};

struct WireResponse {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  Status status;
  bool cache_hit = false;
  bool coalesced = false;
  int64_t retry_after_nanos = 0;
  /// kPattern body: distinct-triple indices, engine order.
  std::vector<uint64_t> matches;
  /// kBgp body: canonical column names + row-major term ids.
  std::vector<std::string> vars;
  std::vector<rdf::TermId> rows;
  uint64_t num_rows = 0;
};

/// Appends one whole frame (length prefix + payload) for `request`.
void EncodeRequest(const WireRequest& request, std::string* out);

/// Appends one whole frame for `response`.
void EncodeResponse(const WireResponse& response, std::string* out);

/// Decodes a request payload (the bytes after the length prefix).
Status DecodeRequest(std::string_view payload, WireRequest* out);

/// Decodes a response payload.
Status DecodeResponse(std::string_view payload, WireResponse* out);

/// Frame extraction from a streaming read buffer. Returns the total bytes
/// (prefix + payload) the complete first frame occupies and points
/// `payload` at it, 0 when `buffer` does not yet hold a complete frame,
/// or kParseError when the declared payload length exceeds `max_frame`.
Result<size_t> ExtractFrame(std::string_view buffer, size_t max_frame,
                            std::string_view* payload);

}  // namespace akb::net

#endif  // AKB_NET_WIRE_H_

// Query-stream extraction walkthrough (the Table 3 machinery at example
// scale): generate a class-skewed query stream, run the pattern family +
// filter rules, and show the credible attributes per class.
//
//   ./build/examples/query_stream [scale_divisor]
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table.h"
#include "extract/query_extractor.h"
#include "synth/query_gen.h"
#include "synth/world.h"

using namespace akb;

int main(int argc, char** argv) {
  size_t divisor = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;

  synth::World world =
      synth::World::Build(synth::WorldConfig::PaperDefault());
  synth::QueryLogConfig config = synth::QueryLogConfig::PaperDefault(divisor);
  auto log = synth::GenerateQueryLog(world, config);
  std::vector<std::string> queries;
  for (const auto& record : log) queries.push_back(record.query);
  std::printf("Stream: %zu records (paper volume / %zu); first five:\n",
              queries.size(), divisor);
  for (size_t i = 0; i < queries.size() && i < 5; ++i) {
    std::printf("  %s\n", queries[i].c_str());
  }
  std::printf("\n");

  extract::QueryStreamExtractor extractor;
  for (const auto& wc : world.classes()) {
    std::vector<std::string> names;
    for (const auto& entity : wc.entities) names.push_back(entity.name);
    extractor.AddClass(wc.name, names);
  }
  auto result = extractor.Extract(queries);

  TextTable table({"Class", "Relevant", "Pattern hits", "Filtered",
                   "Credible attributes", "Top attribute"});
  table.set_title("Query stream extraction");
  for (const auto& cls : result.classes) {
    std::string top = cls.credible_attributes.empty()
                          ? "N/A"
                          : cls.credible_attributes.front().surface + " (x" +
                                std::to_string(
                                    cls.credible_attributes.front().support) +
                                ")";
    table.AddRow({cls.class_name, FormatWithCommas(int64_t(cls.relevant_records)),
                  std::to_string(cls.pattern_hits),
                  std::to_string(cls.filtered_out),
                  cls.credible_attributes.empty()
                      ? "N/A"
                      : std::to_string(cls.credible_attributes.size()),
                  top});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

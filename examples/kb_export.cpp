// KB construction and export: run the pipeline on the paper's five classes
// and serialize the augmented KB as N-Triples (the paper's "actionable
// knowledge" — RDF triples attached to the Freebase-like KB).
//
//   ./build/examples/kb_export [output.nt]
#include <cstdio>
#include <fstream>

#include "core/pipeline.h"
#include "rdf/ntriples.h"

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "augmented_kb.nt";

  akb::synth::World world =
      akb::synth::World::Build(akb::synth::WorldConfig::PaperDefault());

  akb::core::PipelineConfig config;
  config.seed = 2026;
  config.classes = {"Book", "Film"};  // keep the export readable
  config.sites_per_class = 3;
  config.pages_per_site = 12;
  config.articles_per_class = 20;
  config.queries_per_class = 800;

  akb::rdf::TripleStore augmented;
  akb::core::PipelineReport report =
      akb::core::RunPipeline(world, config, &augmented);
  std::printf("%s\n", report.ToString().c_str());

  std::string serialized = akb::rdf::WriteNTriples(augmented);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  out << serialized;
  std::printf("Wrote %zu triples to %s; first five lines:\n",
              augmented.num_triples(), path);
  size_t shown = 0, start = 0;
  while (shown < 5 && start < serialized.size()) {
    size_t end = serialized.find('\n', start);
    if (end == std::string::npos) end = serialized.size();
    std::printf("  %.*s\n", int(end - start), serialized.c_str() + start);
    start = end + 1;
    ++shown;
  }

  // Round-trip sanity: parse it back.
  akb::rdf::TripleStore restored;
  akb::Status status = akb::rdf::ReadNTriples(serialized, &restored);
  if (!status.ok()) {
    std::fprintf(stderr, "round-trip failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("Round-trip parse OK: %zu triples restored.\n",
              restored.num_triples());
  return 0;
}

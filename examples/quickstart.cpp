// Quickstart: build a synthetic world, run the full Figure-1 pipeline
// (four extractors -> confidence -> entity creation -> fusion -> KB
// augmentation), and print the stage/quality report.
//
//   ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "rdf/ntriples.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A small three-class world keeps the quickstart fast (~seconds).
  akb::synth::WorldConfig world_config = akb::synth::WorldConfig::Small();
  world_config.seed = seed;
  akb::synth::World world = akb::synth::World::Build(world_config);
  std::printf("World: %zu classes, %zu entities, %zu ground-truth facts\n\n",
              world.classes().size(), world.TotalEntities(),
              world.TotalFacts());

  akb::core::PipelineConfig config;
  config.seed = seed;
  config.sites_per_class = 3;
  config.pages_per_site = 12;
  config.articles_per_class = 20;
  config.queries_per_class = 800;

  akb::rdf::TripleStore augmented;
  akb::core::PipelineReport report =
      akb::core::RunPipeline(world, config, &augmented);
  std::printf("%s\n", report.ToString().c_str());

  std::printf("Augmented KB holds %zu fused triples; first three:\n",
              augmented.num_triples());
  for (size_t i = 0; i < augmented.num_triples() && i < 3; ++i) {
    std::printf("  %s\n", augmented.DecodeToString(i).c_str());
  }
  return 0;
}

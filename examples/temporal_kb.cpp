// Temporal knowledge extraction walkthrough: generate dated news text about
// office holders, extract (entity, attribute, value, year) observations,
// reconstruct validity intervals, and answer point-in-time queries.
//
//   ./build/examples/temporal_kb [entities] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table.h"
#include "extract/temporal_extractor.h"
#include "synth/temporal_gen.h"

using namespace akb;

int main(int argc, char** argv) {
  size_t entities = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  synth::TemporalConfig config;
  config.num_entities = entities;
  config.first_year = 2000;
  config.last_year = 2015;
  config.mention_rate = 0.85;
  config.error_rate = 0.05;
  config.seed = seed;
  synth::TemporalCorpus corpus = synth::GenerateTemporalCorpus(config);

  std::vector<std::string> texts;
  size_t bytes = 0;
  for (const auto& doc : corpus.documents) {
    texts.push_back(doc.text);
    bytes += doc.text.size();
  }
  std::printf("Corpus: %zu documents, %zu bytes about %zu entities\n\n",
              texts.size(), bytes, corpus.world.entities.size());

  extract::TemporalExtractor extractor;
  auto extraction = extractor.Extract(texts);
  std::printf(
      "Extracted %zu dated observations -> %zu validity intervals "
      "(%zu sentences scanned)\n\n",
      extraction.observations.size(), extraction.intervals.size(),
      extraction.sentences_total);

  // Show the first entity's reconstructed timeline next to the truth.
  const std::string& entity = corpus.world.entities[0];
  TextTable timeline({"Interval (extracted)", "Holder (extracted)",
                      "Truth at interval start"});
  timeline.set_title("Timeline of '" + entity + "' (" + config.attribute +
                     ")");
  for (const auto& interval : extraction.intervals) {
    if (interval.entity != NormalizeSurface(entity)) continue;
    timeline.AddRow(
        {std::to_string(interval.start_year) + "-" +
             std::to_string(interval.end_year),
         interval.value,
         ToLower(corpus.world.HolderAt(0, interval.start_year))});
  }
  std::printf("%s\n", timeline.ToString().c_str());

  // Point-in-time accuracy over the whole corpus.
  size_t checked = 0, correct = 0;
  for (size_t e = 0; e < corpus.world.entities.size(); ++e) {
    for (int year = config.first_year; year <= config.last_year; ++year) {
      std::string extracted = extraction.ValueAt(corpus.world.entities[e],
                                                 config.attribute, year);
      if (extracted.empty()) continue;
      ++checked;
      if (NormalizeSurface(corpus.world.HolderAt(e, year)) == extracted) {
        ++correct;
      }
    }
  }
  std::printf("Point-in-time accuracy: %.3f (%zu/%zu entity-years)\n",
              checked ? double(correct) / double(checked) : 0.0, correct,
              checked);
  return 0;
}

// Knowledge-fusion walkthrough: build a claim set with controlled source
// behaviour (skewed accuracy, one copier bloc, multi-truth items,
// hierarchical values) and compare every fusion method the library ships.
//
//   ./build/examples/knowledge_fusion [items] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table.h"
#include "fusion/accu.h"
#include "fusion/copy_detect.h"
#include "fusion/hierarchy_fusion.h"
#include "fusion/metrics.h"
#include "fusion/multi_truth.h"
#include "fusion/relation_fusion.h"
#include "fusion/vote.h"

using namespace akb;

int main(int argc, char** argv) {
  size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // A deliberately hostile workload: mediocre sources, one oracle, one
  // copier amplifying a bad source, 30% multi-truth items, 30% hierarchical
  // items with generalized claims.
  synth::ClaimGenConfig config;
  config.num_items = items;
  config.seed = seed;
  config.multi_truth_rate = 0.3;
  config.hierarchical_rate = 0.3;
  config.sources = synth::MakeSources(5, 0.45, 0.6, 0.85);
  for (auto& source : config.sources) source.generalize_rate = 0.3;
  synth::SourceSpec oracle;
  oracle.name = "oracle";
  oracle.accuracy = 0.95;
  oracle.coverage = 0.9;
  config.sources.push_back(oracle);
  synth::SourceSpec bad;
  bad.name = "bad";
  bad.accuracy = 0.3;
  bad.coverage = 0.9;
  config.sources.push_back(bad);
  synth::SourceSpec copier;
  copier.name = "copier";
  copier.accuracy = 0.3;
  copier.coverage = 0.85;
  copier.copies_from = 6;  // copies "bad"
  copier.copy_rate = 0.9;
  config.sources.push_back(copier);

  synth::FusionDataset dataset = synth::GenerateClaims(config);
  fusion::ClaimTable table = fusion::ClaimTable::FromDataset(dataset);
  std::printf("Workload: %zu items, %zu sources, %zu claims\n\n",
              table.num_items(), table.num_sources(), table.num_claims());

  TextTable results({"Method", "Precision", "Recall", "F1"});
  results.set_title("Fusion method comparison (ground truth known)");
  auto add = [&](const fusion::FusionOutput& output, double threshold = 0.5) {
    fusion::FusionMetrics m =
        fusion::Evaluate(output, table, dataset, threshold);
    results.AddRow({m.method, FormatDouble(m.precision, 3),
                    FormatDouble(m.recall, 3), FormatDouble(m.f1, 3)});
  };

  add(fusion::Vote(table));
  add(fusion::Accu(table));
  add(fusion::PopAccu(table));
  add(fusion::MultiTruth(table));
  fusion::HierarchyFusionConfig hconfig;
  hconfig.support_fraction = 0.4;
  add(fusion::HierarchyFuse(table, dataset.hierarchy, hconfig), 0.4);

  add(fusion::RelationFuse(table));

  fusion::CopyDetection detection = fusion::DetectCopying(table);
  fusion::AccuConfig aware;
  aware.source_weights = detection.independence;
  fusion::FusionOutput aware_out = fusion::Accu(table, aware);
  aware_out.method = "ACCU+copy-aware";
  add(aware_out);

  std::printf("%s\n", results.ToString().c_str());

  // Show what copy detection learned.
  TextTable sources({"Source", "True accuracy", "Estimated (ACCU)",
                     "Independence weight"});
  sources.set_title("Per-source diagnostics");
  fusion::FusionOutput accu = fusion::Accu(table);
  for (fusion::SourceId s = 0; s < table.num_sources(); ++s) {
    double true_accuracy = 0;
    for (const auto& spec : dataset.sources) {
      if (spec.name == table.source_name(s)) true_accuracy = spec.accuracy;
    }
    sources.AddRow({table.source_name(s), FormatDouble(true_accuracy, 2),
                    FormatDouble(accu.source_quality[s], 2),
                    FormatDouble(detection.independence[s], 2)});
  }
  std::printf("%s", sources.ToString().c_str());
  return 0;
}

// Taxonomic knowledge extraction walkthrough: harvest is-a edges from a
// synthetic Web-text corpus with Hearst patterns (Probase-style), inspect
// the induced taxonomy, and measure entity-typing accuracy.
//
//   ./build/examples/taxonomy [seed]
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table.h"
#include "extract/taxonomy_extractor.h"
#include "synth/taxonomy_gen.h"
#include "synth/world.h"

using namespace akb;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  synth::WorldConfig world_config = synth::WorldConfig::Small();
  world_config.seed = seed;
  synth::World world = synth::World::Build(world_config);

  synth::TaxonomyCorpusConfig corpus_config;
  corpus_config.sentences_per_entity = 3;
  corpus_config.error_rate = 0.05;
  corpus_config.seed = seed + 1;
  auto docs = synth::GenerateTaxonomyCorpus(world, corpus_config);
  std::vector<std::string> texts;
  size_t bytes = 0;
  for (const auto& doc : docs) {
    texts.push_back(doc.text);
    bytes += doc.text.size();
  }
  std::printf("Corpus: %zu documents, %zu bytes\n\n", texts.size(), bytes);

  extract::TaxonomyExtractor extractor;
  auto taxonomy = extractor.Extract(texts);
  std::printf("Extracted %zu is-a edges from %zu sentences (%zu hits)\n\n",
              taxonomy.edges.size(), taxonomy.sentences_total,
              taxonomy.pattern_hits);

  // Category-level view.
  TextTable categories({"Category", "# Instances", "Example instance"});
  categories.set_title("Induced categories");
  for (const auto& wc : world.classes()) {
    std::string category = synth::CategoryNameOf(wc.name);
    auto instances = taxonomy.InstancesOf(category);
    categories.AddRow({category, std::to_string(instances.size()),
                       instances.empty() ? "-" : instances.front()});
  }
  std::printf("%s\n", categories.ToString().c_str());

  // Superclass chains survive transitively.
  std::printf("Transitive checks:\n");
  for (const auto& wc : world.classes()) {
    std::string category = synth::CategoryNameOf(wc.name);
    auto chain = synth::SuperclassChainOf(wc.name);
    std::printf("  %s -> %s reachable: %s\n", category.c_str(),
                chain.back().c_str(),
                taxonomy.IsDescendant(category, chain.back()) ? "yes" : "NO");
  }

  // Entity typing accuracy.
  size_t typed = 0, correct = 0;
  for (const auto& wc : world.classes()) {
    std::string category = synth::CategoryNameOf(wc.name);
    for (const auto& entity : wc.entities) {
      ++typed;
      if (taxonomy.BestCategoryOf(entity.name) == category) ++correct;
    }
  }
  std::printf("\nEntity typing accuracy: %.3f (%zu/%zu)\n",
              double(correct) / double(typed), correct, typed);
  return 0;
}

// Algorithm 1 in isolation: generate templated web sites about one class,
// seed the extractor with a handful of known attributes, and watch it
// discover the rest from tag-path regularity.
//
//   ./build/examples/dom_extraction [class] [num_sites] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>

#include "extract/attribute_dedup.h"
#include "extract/dom_extractor.h"
#include "synth/site_gen.h"
#include "synth/world.h"

int main(int argc, char** argv) {
  std::string class_name = argc > 1 ? argv[1] : "Film";
  size_t num_sites = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  akb::synth::WorldConfig world_config = akb::synth::WorldConfig::Small();
  world_config.seed = seed;
  akb::synth::World world = akb::synth::World::Build(world_config);
  auto cls_id = world.FindClass(class_name);
  if (!cls_id) {
    std::fprintf(stderr, "unknown class '%s'\n", class_name.c_str());
    return 1;
  }
  const akb::synth::WorldClass& wc = world.cls(*cls_id);

  akb::synth::SiteConfig site_config;
  site_config.class_name = class_name;
  site_config.num_sites = num_sites;
  site_config.pages_per_site = 15;
  site_config.attribute_coverage = 0.5;
  site_config.seed = seed + 1;
  auto sites = akb::synth::GenerateSites(world, site_config);

  // Seeds: the first quarter of the class's attributes (as if they came
  // from the query stream and existing KBs).
  std::vector<std::string> entity_names, seeds;
  for (const auto& entity : wc.entities) entity_names.push_back(entity.name);
  for (size_t a = 0; a < wc.attributes.size() / 4 + 1; ++a) {
    seeds.push_back(wc.attributes[a].name);
  }
  std::printf("Class %s: %zu true attributes, %zu seeds, %zu sites\n",
              class_name.c_str(), wc.attributes.size(), seeds.size(),
              sites.size());

  akb::extract::DomTreeExtractor extractor;
  auto extraction = extractor.Extract(sites, entity_names, seeds);

  std::printf(
      "\nStats: %zu pages (%zu with entity node, %zu usable), "
      "%zu patterns induced, %zu/%zu candidate nodes matched, %zu passes\n",
      extraction.stats.pages_total, extraction.stats.pages_with_entity,
      extraction.stats.pages_used, extraction.stats.patterns_induced,
      extraction.stats.nodes_matched, extraction.stats.nodes_considered,
      extraction.stats.passes);

  std::printf("\nDiscovered %zu new attributes:\n",
              extraction.new_attributes.size());
  // An attribute counts as true if its canonical key matches a world
  // attribute (tolerates camelCase/snake_case/of-form surface variants).
  std::unordered_set<std::string> true_keys;
  for (const auto& spec : wc.attributes) {
    true_keys.insert(akb::extract::AttributeKey(spec.name));
  }
  for (const auto& attr : extraction.new_attributes) {
    bool correct =
        true_keys.count(akb::extract::AttributeKey(attr.surface)) > 0;
    std::printf("  %-28s support=%-3zu sim=%.2f conf=%.2f %s\n",
                attr.surface.c_str(), attr.support, attr.best_similarity,
                attr.confidence, correct ? "[true]" : "[FALSE]");
  }

  std::printf("\nHarvested %zu (entity, attribute, value) triples; first 5:\n",
              extraction.triples.size());
  for (size_t i = 0; i < extraction.triples.size() && i < 5; ++i) {
    const auto& t = extraction.triples[i];
    std::printf("  (%s | %s | %s) conf=%.2f from %s\n", t.entity.c_str(),
                t.attribute.c_str(), t.value.c_str(), t.confidence,
                t.source.c_str());
  }
  return 0;
}
